//! Declarative fault injection: scheduled link/switch/gateway failures and
//! stochastic loss.
//!
//! A [`FaultPlan`] is a time-ordered list of [`FaultEvent`]s that the
//! [`crate::Simulation`] consumes through its normal event queue (alongside
//! migrations): every fault has an explicit start and end instant, so a plan
//! can never wedge a run — once the last fault window closes, the network is
//! healthy again and in-flight recovery (TCP RTOs, gateway re-resolution,
//! cache re-learning) drains the queue.
//!
//! The semantics, per event:
//!
//! * [`FaultEvent::SwitchReboot`] — the switch blacks out for `blackout`:
//!   every packet traversing it during the window is dropped
//!   ([`sv2p_metrics::DropCause::Blackout`]). When it comes back it is
//!   cold: its [`sv2p_vnet::SwitchAgent`] is reset, and if it is a ToR the
//!   [`sv2p_vnet::HostAgent`]s of its attached servers are reset too (their
//!   vswitches restarted with the rack). This generalizes the instantaneous
//!   [`crate::Simulation::fail_switch`] into a scheduled, windowed event.
//! * [`FaultEvent::LinkDown`] — the directed link is excluded from ECMP
//!   next-hop selection; flows rehash onto surviving ports, and a packet
//!   with no surviving port is dropped as
//!   [`sv2p_metrics::DropCause::Unroutable`].
//! * [`FaultEvent::GatewayOutage`] — the gateway drops everything during the
//!   window; unresolved senders ride TCP's RTO until it returns (or their
//!   flow's gateway was unaffected).
//! * [`FaultEvent::LossRate`] — uniform random loss on one link (or all
//!   links) at the given rate, drawn from the simulation's dedicated fault
//!   RNG stream so packet-level determinism is preserved.

use sv2p_simcore::{SimDuration, SimTime};
use sv2p_topology::{LinkId, NodeId};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A switch reboots: blackout while down, cold caches when back.
    SwitchReboot {
        /// The rebooting switch.
        node: NodeId,
        /// When the switch goes dark.
        at: SimTime,
        /// How long the blackout lasts.
        blackout: SimDuration,
    },
    /// A directed link goes down, then comes back.
    LinkDown {
        /// The failed link.
        link: LinkId,
        /// Failure instant.
        at: SimTime,
        /// Restoration instant.
        up_at: SimTime,
    },
    /// A translation gateway is unreachable for a window.
    GatewayOutage {
        /// The failed gateway node.
        node: NodeId,
        /// Outage start.
        at: SimTime,
        /// Outage end.
        up_at: SimTime,
    },
    /// Stochastic loss on one link (`Some`) or the whole fabric (`None`).
    LossRate {
        /// Affected link, or every link when `None`.
        link: Option<LinkId>,
        /// Per-packet loss probability in `[0, 1]`.
        rate: f64,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
}

impl FaultEvent {
    /// The instant the fault takes effect.
    pub fn at(&self) -> SimTime {
        match *self {
            FaultEvent::SwitchReboot { at, .. } => at,
            FaultEvent::LinkDown { at, .. } => at,
            FaultEvent::GatewayOutage { at, .. } => at,
            FaultEvent::LossRate { from, .. } => from,
        }
    }

    /// The instant the fault clears.
    pub fn end(&self) -> SimTime {
        match *self {
            FaultEvent::SwitchReboot { at, blackout, .. } => at + blackout,
            FaultEvent::LinkDown { up_at, .. } => up_at,
            FaultEvent::GatewayOutage { up_at, .. } => up_at,
            FaultEvent::LossRate { until, .. } => until,
        }
    }

    /// Human-readable tag for metrics annotations.
    pub fn label(&self) -> String {
        match *self {
            FaultEvent::SwitchReboot { node, .. } => format!("reboot sw{}", node.0),
            FaultEvent::LinkDown { link, .. } => format!("link{} down", link.0),
            FaultEvent::GatewayOutage { node, .. } => format!("gw{} outage", node.0),
            FaultEvent::LossRate { link, rate, .. } => match link {
                Some(l) => format!("loss {rate} on link{}", l.0),
                None => format!("loss {rate} fabric-wide"),
            },
        }
    }

    /// Checks internal consistency (a well-formed window, a sane rate).
    fn validate(&self) -> Result<(), String> {
        if self.end() < self.at() {
            return Err(format!("{}: end precedes start", self.label()));
        }
        if let FaultEvent::LossRate { rate, .. } = *self {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("loss rate {rate} outside [0, 1]"));
            }
        }
        Ok(())
    }
}

/// A validated, time-ordered set of faults for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from events, validating each and ordering by start
    /// time (stable, so same-instant faults keep insertion order — the
    /// determinism contract).
    pub fn from_events(events: impl IntoIterator<Item = FaultEvent>) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for ev in events {
            plan.push(ev)?;
        }
        Ok(plan)
    }

    /// Adds one fault, keeping the plan ordered by start time.
    pub fn push(&mut self, ev: FaultEvent) -> Result<(), String> {
        ev.validate()?;
        // Stable insertion: after the last event starting at or before it.
        let pos = self.events.partition_point(|e| e.at() <= ev.at());
        self.events.insert(pos, ev);
        Ok(())
    }

    /// The ordered events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The instant the last fault clears (`SimTime::ZERO` for an empty
    /// plan) — the earliest moment the network is guaranteed healthy.
    pub fn all_clear_at(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.end())
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(t: u64) -> SimTime {
        SimTime::from_micros(t)
    }

    #[test]
    fn plan_orders_by_start_time_stably() {
        let plan = FaultPlan::from_events([
            FaultEvent::LinkDown {
                link: LinkId(3),
                at: us(50),
                up_at: us(60),
            },
            FaultEvent::SwitchReboot {
                node: NodeId(1),
                at: us(10),
                blackout: SimDuration::from_micros(5),
            },
            FaultEvent::GatewayOutage {
                node: NodeId(9),
                at: us(10),
                up_at: us(20),
            },
        ])
        .unwrap();
        let starts: Vec<u64> = plan.events().iter().map(|e| e.at().as_nanos()).collect();
        assert_eq!(starts, vec![10_000, 10_000, 50_000]);
        // Same-instant events keep insertion order.
        assert!(matches!(plan.events()[0], FaultEvent::SwitchReboot { .. }));
        assert!(matches!(plan.events()[1], FaultEvent::GatewayOutage { .. }));
        assert_eq!(plan.all_clear_at(), us(60));
    }

    #[test]
    fn invalid_windows_and_rates_are_rejected() {
        assert!(FaultPlan::from_events([FaultEvent::LinkDown {
            link: LinkId(0),
            at: us(10),
            up_at: us(5),
        }])
        .is_err());
        assert!(FaultPlan::from_events([FaultEvent::LossRate {
            link: None,
            rate: 1.5,
            from: us(0),
            until: us(10),
        }])
        .is_err());
        assert!(FaultPlan::from_events([FaultEvent::LossRate {
            link: None,
            rate: -0.1,
            from: us(0),
            until: us(10),
        }])
        .is_err());
    }

    #[test]
    fn event_windows_and_labels() {
        let ev = FaultEvent::SwitchReboot {
            node: NodeId(4),
            at: us(100),
            blackout: SimDuration::from_micros(25),
        };
        assert_eq!(ev.at(), us(100));
        assert_eq!(ev.end(), us(125));
        assert_eq!(ev.label(), "reboot sw4");

        let loss = FaultEvent::LossRate {
            link: None,
            rate: 0.001,
            from: us(0),
            until: us(500),
        };
        assert_eq!(loss.end(), us(500));
        assert!(loss.label().contains("fabric-wide"));
    }

    #[test]
    fn zero_length_windows_are_legal() {
        // An instantaneous reboot is the old fail_switch semantics.
        let plan = FaultPlan::from_events([FaultEvent::SwitchReboot {
            node: NodeId(0),
            at: us(10),
            blackout: SimDuration::ZERO,
        }])
        .unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.all_clear_at(), us(10));
    }
}
