//! Slab arena for in-flight packets.
//!
//! A `Packet` with its `TunnelOptions` is ~100 bytes; before this arena
//! existed the simulator moved that struct by value through every event — a
//! switch hop cost two full memcpys (into the calendar, out of the
//! calendar) plus another pair per link queue transit. The arena fixes a
//! packet in place for its whole life: events and link queues carry a
//! 4-byte [`PacketRef`] handle, and only the node logic that actually reads
//! or rewrites headers touches the packet itself.
//!
//! Allocation is a free-list slab: slots are reused in LIFO order, so a
//! steady-state run touches a small, cache-hot region regardless of total
//! packet count. The arena never shrinks; `peak()` is the run's
//! maximum-in-flight packet count, reported by run manifests as an
//! allocations proxy (`peak_arena`).
//!
//! Discipline: every allocated handle has exactly one owner (an event in
//! the calendar or a slot in a link queue) and must be passed to
//! [`PacketArena::free`] exactly once, at the packet's end of life
//! (delivery, drop, or consumption). Debug builds verify both directions
//! with a liveness bitmap.

use sv2p_packet::Packet;

/// Handle to a live packet in the [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef(pub(crate) u32);

/// Fixed-address slab of in-flight packets with a LIFO free list.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
    #[cfg(debug_assertions)]
    alive: Vec<bool>,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `pkt` and returns its handle.
    pub fn alloc(&mut self, pkt: Packet) -> PacketRef {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = pkt;
                #[cfg(debug_assertions)]
                {
                    debug_assert!(!self.alive[i as usize], "reusing a live slot");
                    self.alive[i as usize] = true;
                }
                PacketRef(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("arena overflow");
                self.slots.push(pkt);
                #[cfg(debug_assertions)]
                self.alive.push(true);
                PacketRef(i)
            }
        }
    }

    /// Reads a live packet.
    #[inline]
    pub fn get(&self, h: PacketRef) -> &Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.alive[h.0 as usize], "read of a freed packet");
        &self.slots[h.0 as usize]
    }

    /// Mutates a live packet (header rewrites at switches and gateways).
    #[inline]
    pub fn get_mut(&mut self, h: PacketRef) -> &mut Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.alive[h.0 as usize], "write to a freed packet");
        &mut self.slots[h.0 as usize]
    }

    /// Releases a packet at its end of life (delivered, dropped, consumed).
    pub fn free(&mut self, h: PacketRef) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.alive[h.0 as usize], "double free");
            self.alive[h.0 as usize] = false;
        }
        self.live -= 1;
        self.free.push(h.0);
    }

    /// Packets currently in flight.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Maximum packets simultaneously in flight (allocations proxy in run
    /// manifests).
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_packet::{
        FlowId, InnerHeader, OuterHeader, PacketId, PacketKind, Pip, TcpFlags, TunnelOptions,
        Vip,
    };

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            kind: PacketKind::Data,
            outer: OuterHeader {
                src_pip: Pip(1),
                dst_pip: Pip(2),
                resolved: true,
            },
            inner: InnerHeader {
                src_vip: Vip(1),
                dst_vip: Vip(2),
                src_port: 1,
                dst_port: 2,
                protocol: sv2p_packet::packet::Protocol::Udp,
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
            },
            opts: TunnelOptions::default(),
            payload: 0,
            switch_hops: 0,
            sent_ns: 0,
            first_of_flow: false,
            visited_gateway: false,
        }
    }

    #[test]
    fn alloc_get_free_round_trips() {
        let mut a = PacketArena::new();
        let h1 = a.alloc(pkt(1));
        let h2 = a.alloc(pkt(2));
        assert_eq!(a.get(h1).id, PacketId(1));
        assert_eq!(a.get(h2).id, PacketId(2));
        a.get_mut(h1).switch_hops = 3;
        assert_eq!(a.get(h1).switch_hops, 3);
        assert_eq!(a.live(), 2);
        a.free(h1);
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn slots_are_reused_and_peak_tracks_high_water() {
        let mut a = PacketArena::new();
        let h1 = a.alloc(pkt(1));
        let h2 = a.alloc(pkt(2));
        assert_eq!(a.peak(), 2);
        a.free(h1);
        a.free(h2);
        // LIFO reuse: the most recently freed slot comes back first.
        let h3 = a.alloc(pkt(3));
        assert_eq!(h3, h2);
        assert_eq!(a.peak(), 2, "peak must not drop");
        assert_eq!(a.live(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_panics_in_debug() {
        let mut a = PacketArena::new();
        let h = a.alloc(pkt(1));
        a.free(h);
        a.free(h);
    }
}
