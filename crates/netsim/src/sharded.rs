//! The deterministic multi-core engine: a pod-partitioned simulation that
//! reproduces the single-threaded execution bit-for-bit.
//!
//! # Architecture
//!
//! A [`ShardedSimulation`] holds one **driver** [`Simulation`] plus one
//! **worker** replica per shard of a [`PodPartition`] (each pod group is a
//! shard; core switches share a shard). The driver's calendar is the
//! single source of global `(time, seq)` order — every event that has ever
//! been "in the future" lives there. The run proceeds in conservative
//! lookahead windows:
//!
//! 1. The driver pops the window's events in global order and hands each
//!    shard its slice (packets travel by value as wire events).
//! 2. Workers execute their slices in parallel on scoped threads. A
//!    follow-up event that the same shard owns and that lands inside the
//!    window executes locally; everything else — cross-shard link
//!    arrivals, post-window timers — returns to the driver. The window
//!    length never exceeds the partition's lookahead (the minimum
//!    inter-shard link latency), so no cross-shard event can land inside
//!    the window of another shard: shards never need to communicate
//!    mid-window.
//! 3. Workers journal every order-sensitive side effect (schedulings,
//!    flow-lifecycle metrics, trace events, packet-id allocations). The
//!    driver k-way-merges the journals back into global order and replays
//!    them onto the master metrics, tracer and calendar — so summaries and
//!    telemetry are byte-identical to a single-threaded run regardless of
//!    shard count.
//! 4. Global events (faults, migrations, churn marks, telemetry samples)
//!    pause the windowing: the driver executes them itself at their exact
//!    global position and broadcasts state changes to every worker.
//!
//! # Migrations
//!
//! A VM migration is a global event: every replica applies the mapping,
//! placement, and follow-me updates at the migration instant, so event
//! ownership (which is re-derived from the placement per event) flips to
//! the new shard for everything scheduled afterwards. When the old and new
//! hosts live on different shards, the driver additionally moves the
//! affected flows' transport state (TCP sender/receiver machines, RTO
//! generations, UDP delivery counters) from the old owner replica to the
//! new one — both shards are quiescent between windows, so the transfer
//! is race-free and the run stays byte-identical to the oracle.
//!
//! # Limitations
//!
//! Degenerate partitions (one shard, or zero lookahead) run the driver
//! alone as a single-threaded fallback: the driver is a complete oracle
//! simulation and simply runs everything itself.

use std::sync::mpsc;
use std::time::Instant;

use sv2p_metrics::Metrics;
use sv2p_packet::{FlowId, Pip, SwitchTag, Vip};
use sv2p_simcore::{merge_journals, FxHashMap, SimDuration, SimTime};
use sv2p_telemetry::profile::{HistKind, Phase, Profiler};
use sv2p_telemetry::{Sample, Tracer};
use sv2p_topology::{FatTreeConfig, NodeId, NodeKind, PodPartition, RoleMap, Routing, Topology};
use sv2p_vnet::{GatewayDirectory, MappingDb, Migration, Placement, Strategy};

use crate::churn::ChurnPlan;
use crate::config::SimConfig;
use crate::faults::FaultPlan;
use crate::flows::FlowSpec;
use crate::sim::{Event, Simulation};
use crate::wire::{
    ExecBlock, FlowXfer, GlobalEvent, JournalOp, MetricOp, ShardSnapshot, WireEvent,
};

/// Driver → worker commands. The channel is bounded: the protocol is
/// strict request/response per window, so a small depth suffices.
enum ToWorker {
    Window {
        batch: Vec<(SimTime, u64, WireEvent)>,
        end: SimTime,
    },
    Global(GlobalEvent),
    /// Extract (and zero) the transport state of flows whose endpoint VM
    /// `vm` just migrated off this shard; answered with `FromWorker::Flows`.
    TakeMigrated {
        vm: usize,
    },
    /// Install transport state extracted from the old owner shard.
    PutMigrated(Vec<FlowXfer>),
    Snapshot {
        widx: usize,
    },
    Finish,
}

/// Worker → driver responses.
enum FromWorker {
    /// A replayed window's journal, plus the worker-side wall-clock spent
    /// replaying it (`0` when profiling is off — the worker times itself
    /// because the driver's barrier span cannot separate one shard's work
    /// from another's).
    Journal {
        blocks: Vec<ExecBlock>,
        replay_ns: u64,
    },
    Flows(Vec<FlowXfer>),
    Snapshot(ShardSnapshot),
}

/// A pod-sharded, multi-threaded simulation whose observable results are
/// byte-identical to [`Simulation`] run single-threaded.
pub struct ShardedSimulation {
    driver: Simulation,
    replicas: Vec<Simulation>,
    partition: PodPartition,
    /// Oracle-equivalent executed-event count (replayed journal blocks
    /// plus driver-executed global events).
    exec_count: u64,
    /// Time of the last replayed journal block; the driver's calendar
    /// clock can lag it (locally executed children never pop there).
    last_block_time: SimTime,
    /// Provisional → global packet-id map (tracing only).
    pkt_map: FxHashMap<u64, u64>,
    /// Run the driver alone, single-threaded (degenerate partition: one
    /// shard, or zero lookahead).
    fallback: bool,
    /// Shard-local counters have been folded into the master metrics.
    folded: bool,
    /// Driver-phase self-profiling (enabled by `SimConfig::profile`; in
    /// fallback mode the driver's own per-event profiler runs instead).
    profiler: Profiler,
}

impl ShardedSimulation {
    /// Builds a sharded experiment over at most `shards` shards (clamped
    /// by the partitioner to what the topology supports). All replicas are
    /// constructed identically from the same seed, so per-node RNG streams
    /// agree across the fleet.
    pub fn new(
        cfg: SimConfig,
        ft: &FatTreeConfig,
        strategy: &dyn Strategy,
        total_cache_entries: usize,
        vms_per_server: u32,
        shards: u16,
    ) -> Self {
        let driver = Simulation::new(cfg, ft, strategy, total_cache_entries, vms_per_server);
        let partition = PodPartition::new(driver.topology(), shards);
        let fallback = partition.shards() < 2 || partition.lookahead_ns() == 0;
        let mut replicas = Vec::new();
        if !fallback {
            for s in 0..partition.shards() {
                let mut rep =
                    Simulation::new(cfg, ft, strategy, total_cache_entries, vms_per_server);
                rep.attach_worker(s, partition.shard_map().to_vec());
                replicas.push(rep);
            }
        }
        let mut profiler = Profiler::new(cfg.profile && !fallback);
        if profiler.enabled() {
            profiler.ensure_shards(partition.shards() as usize);
        }
        ShardedSimulation {
            driver,
            replicas,
            partition,
            exec_count: 0,
            last_block_time: SimTime::ZERO,
            pkt_map: FxHashMap::default(),
            fallback,
            folded: false,
            profiler,
        }
    }

    /// The engine self-profiler: the driver-phase profiler when sharding
    /// is live, the driver simulation's per-event profiler in fallback.
    pub fn profiler(&self) -> &Profiler {
        if self.fallback {
            self.driver.profiler()
        } else {
            &self.profiler
        }
    }

    /// The partition in use.
    pub fn partition(&self) -> &PodPartition {
        &self.partition
    }

    /// True when the engine runs the driver alone (degenerate partition).
    pub fn is_fallback(&self) -> bool {
        self.fallback
    }

    /// Registers the workload on the driver's calendar and mirrors the
    /// flow table into every worker replica.
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        let specs: Vec<FlowSpec> = specs.into_iter().collect();
        for rep in &mut self.replicas {
            rep.register_flows(specs.iter().cloned());
        }
        self.driver.add_flows(specs);
    }

    /// Registers a VM migration on the driver's calendar and mirrors the
    /// migration table into every worker replica (broadcast `Migrate`
    /// events carry table indices). At the migration instant the driver
    /// closes the window, broadcasts the placement/database update, and
    /// moves the affected flows' transport state between owner shards.
    pub fn add_migration(&mut self, m: Migration) {
        for rep in &mut self.replicas {
            rep.register_migrations([m]);
        }
        self.driver.add_migration(m);
    }

    /// Registers a churn plan fleet-wide: the flow table and the migration
    /// table are mirrored into every replica; the driver owns the calendar
    /// and the churn-mark timeline (marks never touch worker state).
    pub fn apply_churn_plan(&mut self, plan: &ChurnPlan) {
        for rep in &mut self.replicas {
            rep.register_flows(plan.flows.iter().cloned());
            rep.register_migrations(plan.migrations.iter().copied());
        }
        self.driver.apply_churn_plan(plan);
    }

    /// Registers a fault plan on the driver and mirrors the plan table
    /// into every replica (broadcast fault events carry plan indices).
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        for rep in &mut self.replicas {
            rep.register_fault_events(&plan);
        }
        self.driver.apply_fault_plan(plan);
    }

    /// Runs until the calendar drains (or the configured end of time).
    pub fn run(&mut self) {
        let horizon = self.driver.cfg.end_of_time.unwrap_or(SimTime::MAX);
        self.run_until(horizon);
    }

    /// Runs all events up to and including instant `t`.
    pub fn run_until(&mut self, t: SimTime) {
        if self.fallback {
            self.driver.run_until(t);
            return;
        }
        let horizon = match self.driver.cfg.end_of_time {
            Some(h) => h.min(t),
            None => t,
        };
        let n = self.replicas.len();
        let Self {
            driver,
            replicas,
            partition,
            exec_count,
            last_block_time,
            pkt_map,
            profiler,
            ..
        } = self;
        let shard_map = partition.shard_map();
        let lookahead = partition.lookahead_ns();
        let prof = profiler.enabled();
        let run_t0 = prof.then(Instant::now);

        std::thread::scope(|scope| {
            let mut to_workers = Vec::with_capacity(n);
            let mut from_workers = Vec::with_capacity(n);
            for rep in replicas.iter_mut() {
                let (tx_cmd, rx_cmd) = mpsc::sync_channel::<ToWorker>(4);
                let (tx_res, rx_res) = mpsc::sync_channel::<FromWorker>(4);
                to_workers.push(tx_cmd);
                from_workers.push(rx_res);
                scope.spawn(move || {
                    while let Ok(msg) = rx_cmd.recv() {
                        match msg {
                            ToWorker::Window { batch, end } => {
                                let t0 = prof.then(Instant::now);
                                let journal = rep.run_window(batch, end);
                                let replay_ns =
                                    t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                                let _ = tx_res.send(FromWorker::Journal {
                                    blocks: journal,
                                    replay_ns,
                                });
                            }
                            ToWorker::Global(g) => rep.apply_global(g),
                            ToWorker::TakeMigrated { vm } => {
                                let _ = tx_res
                                    .send(FromWorker::Flows(rep.extract_migrated_flows(vm)));
                            }
                            ToWorker::PutMigrated(bundles) => rep.inject_migrated_flows(bundles),
                            ToWorker::Snapshot { widx } => {
                                let _ =
                                    tx_res.send(FromWorker::Snapshot(rep.shard_snapshot(widx)));
                            }
                            ToWorker::Finish => break,
                        }
                    }
                });
            }

            while let Some(w0) = driver.events.peek_time() {
                if w0 > horizon {
                    break;
                }
                // Window upper bound: one lookahead past the first event,
                // clipped so events at exactly `horizon` still run.
                let w_cap = SimTime::from_nanos(
                    w0.as_nanos()
                        .saturating_add(lookahead)
                        .min(horizon.as_nanos().saturating_add(1)),
                );
                let mut batches: Vec<Vec<(SimTime, u64, WireEvent)>> = vec![Vec::new(); n];
                let mut pending_global: Option<(SimTime, Event)> = None;
                let mut window_end = w_cap;
                // Oracle advance: popping the global calendar and resolving
                // ownership. Dematerialization is timed apart so the cost
                // of the event→wire conversion is visible on its own — but
                // only 1 event in 32 is actually clocked and the rest
                // extrapolated: clock reads can cost hundreds of ns on
                // hosts without a vDSO fast path, and two per popped event
                // was measurably slowing profiled sweeps. The sampling
                // decision keys off the deterministic `popped` counter, so
                // what gets timed never depends on prior timings.
                let batch_t0 = prof.then(Instant::now);
                let mut demat_sampled_ns = 0u64;
                let mut demat_sampled = 0u64;
                let mut popped = 0u64;
                while let Some(nt) = driver.events.peek_time() {
                    if nt >= w_cap {
                        break;
                    }
                    let se = driver.events.pop().expect("peeked event");
                    match driver.owner_of_event(&se.payload, shard_map) {
                        Some(s) => {
                            popped += 1;
                            let wire = if prof && popped & 31 == 1 {
                                let d0 = Instant::now();
                                let w = driver.dematerialize(se.payload);
                                demat_sampled_ns += d0.elapsed().as_nanos() as u64;
                                demat_sampled += 1;
                                w
                            } else {
                                driver.dematerialize(se.payload)
                            };
                            batches[s as usize].push((se.time, se.seq, wire));
                        }
                        None => {
                            // A global event closes the window at its own
                            // instant: follow-ups at or past it return to
                            // the driver, preserving the exact interleaving
                            // around the global event.
                            window_end = se.time;
                            pending_global = Some((se.time, se.payload));
                            break;
                        }
                    }
                }
                if let Some(t0) = batch_t0 {
                    let total = t0.elapsed().as_nanos() as u64;
                    let demat_ns = if demat_sampled > 0 {
                        ((demat_sampled_ns as u128 * popped as u128 / demat_sampled as u128)
                            as u64)
                            .min(total)
                    } else {
                        0
                    };
                    profiler.phase_add_span(
                        Phase::OracleAdvance,
                        popped,
                        total.saturating_sub(demat_ns),
                    );
                    profiler.phase_add_span(Phase::Dematerialize, popped, demat_ns);
                }

                let mut busy = vec![false; n];
                for (s, batch) in batches.into_iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    busy[s] = true;
                    to_workers[s]
                        .send(ToWorker::Window {
                            batch,
                            end: window_end,
                        })
                        .expect("worker alive");
                }
                let any_busy = busy.iter().any(|&b| b);
                let barrier_t0 = prof.then(Instant::now);
                let mut journals: Vec<Vec<ExecBlock>> = Vec::with_capacity(n);
                let mut replay_by_shard = vec![0u64; n];
                for (s, rx) in from_workers.iter().enumerate() {
                    if !busy[s] {
                        journals.push(Vec::new());
                        continue;
                    }
                    match rx.recv().expect("worker alive") {
                        FromWorker::Journal { blocks, replay_ns } => {
                            replay_by_shard[s] = replay_ns;
                            journals.push(blocks);
                        }
                        _ => unreachable!("no snapshot or transfer pending"),
                    }
                }
                if let (Some(t0), true) = (barrier_t0, any_busy) {
                    // The driver's blocked-at-barrier span splits into the
                    // mean per-shard busy time (useful parallel work) and
                    // the remainder: what the average shard wasted waiting
                    // for the slowest one (imbalance + serialization).
                    let span = t0.elapsed().as_nanos() as u64;
                    let sum_r: u64 = replay_by_shard.iter().sum();
                    let avg_r = (sum_r / n as u64).min(span);
                    let max_r = replay_by_shard.iter().copied().max().unwrap_or(0);
                    profiler.phase_add(Phase::WorkerReplay, avg_r);
                    profiler.phase_add(Phase::BarrierWait, span - avg_r);
                    profiler.record(HistKind::WindowNs, span);
                    for (s, &r) in replay_by_shard.iter().enumerate() {
                        if busy[s] {
                            profiler.record(HistKind::ShardReplayNs, r);
                        }
                        profiler.shard_sample(
                            s,
                            r,
                            max_r.saturating_sub(r),
                            journals[s].len() as u64,
                        );
                    }
                    profiler.windows += 1;
                    // Deterministic once-per-window occupancy samples.
                    let (ready, wheel, overflow) = driver.events.occupancy_breakdown();
                    profiler.record(HistKind::CalendarLen, (ready + wheel + overflow) as u64);
                    profiler.record(HistKind::CalendarOverflow, overflow as u64);
                    profiler.record(HistKind::ArenaLive, driver.arena_live() as u64);
                }

                let merge_t0 = prof.then(Instant::now);
                merge_journals(journals, |_shard, block| {
                    if prof {
                        profiler.journal_blocks += 1;
                        profiler.journal_ops += block.ops.len() as u64;
                        profiler.record(HistKind::JournalBlockOps, block.ops.len() as u64);
                    }
                    *exec_count += 1;
                    *last_block_time = block.time;
                    let mut assigned = Vec::new();
                    for op in &block.ops {
                        match op {
                            JournalOp::Sched { wire: None, .. } => {
                                // Executed inside the shard's window; burn
                                // the sequence number the oracle would have
                                // assigned it.
                                assigned.push(driver.events.reserve_seq());
                            }
                            JournalOp::Sched {
                                at,
                                wire: Some(wire),
                            } => {
                                let ev = driver.materialize(wire.clone());
                                assigned.push(driver.events.schedule_at(*at, ev));
                            }
                            JournalOp::PktAlloc(prov) => {
                                let id = driver.next_pkt_id;
                                driver.next_pkt_id += 1;
                                pkt_map.insert(*prov, id);
                            }
                            JournalOp::Metric(m) => match *m {
                                MetricOp::FlowStarted(f) => {
                                    driver.metrics.flow_started(FlowId(f), block.time)
                                }
                                MetricOp::FlowCompleted(f) => {
                                    driver.metrics.flow_completed(FlowId(f), block.time)
                                }
                                MetricOp::FirstPacketDelivered(f) => {
                                    driver
                                        .metrics
                                        .first_packet_delivered(FlowId(f), block.time)
                                }
                                MetricOp::Delivery { sent_ns, hops } => {
                                    driver.metrics.record_delivery(
                                        SimTime::from_nanos(sent_ns),
                                        block.time,
                                        hops,
                                    )
                                }
                            },
                            JournalOp::Trace(ev) => {
                                let mut ev = ev.clone();
                                if let Some(p) = ev.pkt {
                                    ev.pkt = Some(*pkt_map.get(&p).unwrap_or(&p));
                                }
                                driver.tracer_mut().record(ev);
                            }
                        }
                    }
                    assigned
                });
                if let Some(t0) = merge_t0 {
                    profiler.phase_add(Phase::JournalMerge, t0.elapsed().as_nanos() as u64);
                }

                let global_t0 = (prof && pending_global.is_some()).then(Instant::now);
                if let Some((tg, gev)) = pending_global {
                    if prof {
                        profiler.global_events += 1;
                    }
                    *exec_count += 1;
                    *last_block_time = tg;
                    match gev {
                        Event::TelemetrySample => {
                            let widx =
                                (tg.as_nanos() / driver.metrics.window_len_ns()) as usize;
                            for tx in &to_workers {
                                tx.send(ToWorker::Snapshot { widx }).expect("worker alive");
                            }
                            let mut s = ShardSnapshot::default();
                            for rx in &from_workers {
                                match rx.recv().expect("worker alive") {
                                    FromWorker::Snapshot(p) => {
                                        s.q_total += p.q_total;
                                        s.q_max = s.q_max.max(p.q_max);
                                        s.occ_tor += p.occ_tor;
                                        s.occ_spine += p.occ_spine;
                                        s.occ_core += p.occ_core;
                                        s.data_sent_cum += p.data_sent_cum;
                                        s.gateway_cum += p.gateway_cum;
                                        s.win_data_sent += p.win_data_sent;
                                        s.win_gateway += p.win_gateway;
                                    }
                                    _ => unreachable!("no window or transfer pending"),
                                }
                            }
                            let hit_rate_window = if s.win_data_sent == 0 {
                                None
                            } else {
                                Some(1.0 - s.win_gateway as f64 / s.win_data_sent as f64)
                            };
                            let hit_rate_cum = if s.data_sent_cum == 0 {
                                0.0
                            } else {
                                1.0 - s.gateway_cum as f64 / s.data_sent_cum as f64
                            };
                            let pending_events = driver.events.len() as u64;
                            driver.tracer_mut().samples.push(Sample {
                                t_ns: tg.as_nanos(),
                                events_executed: *exec_count,
                                pending_events,
                                queue_pkts_total: s.q_total,
                                queue_pkts_max: s.q_max,
                                occ_tor: s.occ_tor,
                                occ_spine: s.occ_spine,
                                occ_core: s.occ_core,
                                hit_rate_window,
                                hit_rate_cum,
                                gateway_pkts_cum: s.gateway_cum,
                            });
                            if !driver.events.is_empty() {
                                let period = SimDuration::from_nanos(
                                    driver.tracer().config().sample_every_ns,
                                );
                                driver.events.schedule_in(period, Event::TelemetrySample);
                            }
                        }
                        Event::FaultStart(i) => {
                            driver.apply_global(GlobalEvent::FaultStart(i));
                            for tx in &to_workers {
                                tx.send(ToWorker::Global(GlobalEvent::FaultStart(i)))
                                    .expect("worker alive");
                            }
                        }
                        Event::FaultEnd(i) => {
                            driver.apply_global(GlobalEvent::FaultEnd(i));
                            for tx in &to_workers {
                                tx.send(ToWorker::Global(GlobalEvent::FaultEnd(i)))
                                    .expect("worker alive");
                            }
                        }
                        Event::Migrate(i) => {
                            // Resolve old/new owner shards BEFORE the
                            // broadcast mutates the placement fleet-wide.
                            let m = driver.migration(i);
                            let vm = driver
                                .placement
                                .index_of(m.vip)
                                .expect("migrating unknown VIP");
                            let old_shard =
                                shard_map[driver.placement.node_of(vm).0 as usize];
                            let new_shard = shard_map[m.to_node.0 as usize];
                            driver.apply_global(GlobalEvent::Migrate(i));
                            for tx in &to_workers {
                                tx.send(ToWorker::Global(GlobalEvent::Migrate(i)))
                                    .expect("worker alive");
                            }
                            if old_shard != new_shard {
                                // Move the affected flows' transport state
                                // to the new owner. Per-channel FIFO means
                                // both shards apply the migration before
                                // the transfer messages arrive.
                                to_workers[old_shard as usize]
                                    .send(ToWorker::TakeMigrated { vm })
                                    .expect("worker alive");
                                let bundles = match from_workers[old_shard as usize]
                                    .recv()
                                    .expect("worker alive")
                                {
                                    FromWorker::Flows(b) => b,
                                    _ => unreachable!("flow transfer pending"),
                                };
                                to_workers[new_shard as usize]
                                    .send(ToWorker::PutMigrated(bundles))
                                    .expect("worker alive");
                            }
                        }
                        Event::ChurnMark(i) => driver.on_churn_mark(i),
                        _ => unreachable!("not a global event"),
                    }
                }
                if let Some(t0) = global_t0 {
                    profiler.phase_add(Phase::GlobalExec, t0.elapsed().as_nanos() as u64);
                }
            }

            for tx in &to_workers {
                let _ = tx.send(ToWorker::Finish);
            }
        });
        if let Some(t0) = run_t0 {
            self.profiler.add_run_ns(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Folds order-free shard-local counters (byte/drop/hit counters,
    /// per-window tallies, transport statistics) into the master metrics.
    /// Runs once; call only after the run is complete.
    fn ensure_folded(&mut self) {
        if self.folded || self.fallback {
            return;
        }
        self.folded = true;
        for rep in &self.replicas {
            self.driver.metrics.absorb_shard(&rep.metrics);
            for f in &rep.flows {
                self.driver.metrics.reordered_segments += f.tcp_rx.reordered_segments;
                if let Some(tx) = &f.tcp_tx {
                    self.driver.metrics.retransmissions += tx.retransmits;
                }
            }
        }
    }

    /// Folds shard counters and returns the run summary (byte-identical
    /// to the single-threaded engine's).
    pub fn summary(&mut self) -> sv2p_metrics::RunSummary {
        self.ensure_folded();
        self.driver.summary()
    }

    /// Current virtual time: the later of the driver clock and the last
    /// replayed event (locally executed children never pop on the driver).
    pub fn now(&self) -> SimTime {
        self.driver.now().max(self.last_block_time)
    }

    /// Events executed, equal to the single-threaded count: one per
    /// replayed journal block plus one per driver-executed global event.
    pub fn events_executed(&self) -> u64 {
        if self.fallback {
            self.driver.events_executed()
        } else {
            self.exec_count
        }
    }

    /// The driver calendar's pending-event high-water mark. Shard-local
    /// window queues are excluded: every event that was ever "pending"
    /// globally passes through the driver calendar.
    pub fn peak_queue(&self) -> usize {
        self.driver.peak_queue()
    }

    /// In-flight packet high-water mark, summed over the driver's parking
    /// arena and every shard arena.
    pub fn peak_arena(&self) -> usize {
        self.driver.peak_arena() + self.replicas.iter().map(|r| r.peak_arena()).sum::<usize>()
    }

    /// The master telemetry tracer.
    pub fn tracer(&self) -> &Tracer {
        self.driver.tracer()
    }

    /// Mutable master tracer access.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        self.driver.tracer_mut()
    }

    /// The master metrics (complete after [`Self::summary`] folds shard
    /// counters).
    pub fn metrics(&self) -> &Metrics {
        &self.driver.metrics
    }

    /// Read-only topology access.
    pub fn topology(&self) -> &Topology {
        self.driver.topology()
    }

    /// Read-only routing access.
    pub fn routing(&self) -> &Routing {
        self.driver.routing()
    }

    /// Read-only role access.
    pub fn roles(&self) -> &RoleMap {
        self.driver.roles()
    }

    /// The gateway directory in use.
    pub fn gateway_directory(&self) -> &GatewayDirectory {
        self.driver.gateway_directory()
    }

    /// The VM placement (the driver's copy; broadcast migrations keep it
    /// in sync fleet-wide).
    pub fn placement(&self) -> &Placement {
        &self.driver.placement
    }

    /// Every cached `(switch, vip, pip)` line that disagrees with the
    /// ground-truth mapping database, read from each switch's owning shard
    /// (rows grouped by shard, cache-line order within an agent).
    pub fn stale_cache_entries(&self) -> Vec<(NodeId, Vip, Pip)> {
        if self.fallback {
            return self.driver.stale_cache_entries();
        }
        let mut out = Vec::new();
        for (s, rep) in self.replicas.iter().enumerate() {
            out.extend(
                rep.stale_cache_entries()
                    .into_iter()
                    .filter(|(n, _, _)| self.partition.shard_of(*n) as usize == s),
            );
        }
        out
    }

    /// The ground-truth V2P database.
    pub fn db(&self) -> &MappingDb {
        self.driver.db()
    }

    /// Bytes processed by each switch (summed across shards before the
    /// fold, read from the master after).
    pub fn per_switch_bytes(&self) -> Vec<(NodeId, NodeKind, u64)> {
        let mut out = self.driver.per_switch_bytes();
        if !self.folded && !self.fallback {
            for rep in &self.replicas {
                for (slot, (_, _, b)) in out.iter_mut().zip(rep.per_switch_bytes()) {
                    slot.2 += b;
                }
            }
        }
        out
    }

    /// Per-switch cache occupancy, read from each switch's owning shard
    /// (the only replica whose agent state evolves).
    pub fn cache_occupancy(&self) -> Vec<(SwitchTag, usize)> {
        if self.fallback {
            return self.driver.cache_occupancy();
        }
        let per_rep: Vec<Vec<(SwitchTag, usize)>> =
            self.replicas.iter().map(|r| r.cache_occupancy()).collect();
        self.driver
            .topology()
            .switches()
            .enumerate()
            .map(|(i, sw)| per_rep[self.partition.shard_of(sw.id) as usize][i])
            .collect()
    }

    /// Installs `entries` into the switch agent at `node`: traced on the
    /// master, mirrored silently into the owning shard.
    pub fn install_cache_entries(&mut self, node: NodeId, clear: bool, entries: &[(Vip, Pip)]) {
        self.driver.install_cache_entries(node, clear, entries);
        if !self.fallback {
            let owner = self.partition.shard_of(node) as usize;
            self.replicas[owner].install_entries_silent(node, clear, entries);
        }
    }

    /// Injects a switch failure (volatile cache loss) across the fleet.
    pub fn fail_switch(&mut self, node: NodeId) {
        self.driver.fail_switch(node);
        for rep in &mut self.replicas {
            rep.cold_reset_switch(node);
        }
    }

    /// Fails every switch at once across the fleet.
    pub fn fail_all_switches(&mut self) {
        self.driver.fail_all_switches();
        let switches: Vec<NodeId> = self.driver.topology().switches().map(|s| s.id).collect();
        for rep in &mut self.replicas {
            for &sw in &switches {
                rep.cold_reset_switch(sw);
            }
        }
    }

    /// Control-plane role reassignment, applied fleet-wide.
    pub fn reassign_switch_role(&mut self, node: NodeId, role: sv2p_topology::SwitchRole) {
        self.driver.reassign_switch_role(node, role);
        for rep in &mut self.replicas {
            rep.reassign_switch_role(node, role);
        }
    }

    /// Per-(src_vm, dst_vm) data-packet counts, merged across shards
    /// (sends are counted where they execute).
    pub fn traffic_matrix(&self) -> FxHashMap<(u32, u32), u64> {
        let mut out = self.driver.traffic_matrix().clone();
        for rep in &self.replicas {
            rep.merge_traffic_matrix_into(&mut out);
        }
        out
    }

    /// Resets traffic-matrix counters fleet-wide.
    pub fn clear_traffic_matrix(&mut self) {
        self.driver.clear_traffic_matrix();
        for rep in &mut self.replicas {
            rep.clear_traffic_matrix();
        }
    }
}
