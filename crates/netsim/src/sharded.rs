//! The deterministic multi-core engine: conservative pod-partitioned PDES
//! that reproduces the single-threaded execution bit-for-bit.
//!
//! # Architecture
//!
//! A [`ShardedSimulation`] holds one **driver** [`Simulation`] plus one
//! **worker** replica per shard of a [`PodPartition`] (each pod group is a
//! shard; core switches share a shard). Unlike the retired oracle design —
//! where the driver's calendar held *every* event and workers merely
//! replayed dematerialized window batches — each worker owns the
//! *persistent* calendar of its partition: workload events are inserted at
//! the owner shard at registration and live there until they execute. The
//! driver's calendar holds only global events (faults, migrations, churn
//! marks, telemetry samples), and its sequence counter is the global
//! `(time, seq)` authority.
//!
//! The run proceeds in conservative lookahead windows:
//!
//! 1. The driver computes the window boundary: one lookahead (the
//!    partition's minimum cut-link delay) past the earliest pending event
//!    anywhere, clipped to the `(time, seq)` key of the next global event.
//!    Every shard with work before the boundary drains its own calendar in
//!    parallel on scoped threads — pod-local follow-up events that land
//!    inside the window execute immediately under a provisional key;
//!    events past the boundary park in a pending buffer, arena handles
//!    intact. Because the boundary never exceeds the lookahead, no
//!    cut-link packet emitted inside a window can be *due* inside that
//!    same window on another shard: shards never communicate mid-window.
//! 2. Workers journal only the order-sensitive residue of each executed
//!    event: how many schedulings it performed, any cut-link events bound
//!    for other shards, and the observables (flow-lifecycle metrics, trace
//!    events, packet-id allocations). The driver k-way-merges the blocks
//!    back into global `(time, seq)` order, granting each scheduling the
//!    exact global sequence number the single-threaded engine would have
//!    assigned — so summaries and telemetry are byte-identical to a
//!    single-threaded run regardless of shard count.
//! 3. Cut exchange: the routed cut-link events (resolved to their granted
//!    seqs) and the grants for parked events are delivered right after the
//!    merge, before any later command (channels are FIFO), so every
//!    calendar is globally consistent at each boundary and between
//!    `run_until` calls.
//! 4. Global events execute at their exact `(time, seq)` position between
//!    windows: the driver applies them to the composed state and
//!    broadcasts state changes to every worker.
//!
//! # Migrations
//!
//! A VM migration is a global event: every replica applies the mapping,
//! placement, and follow-me updates at the migration instant, so event
//! ownership (which is re-derived from the placement per event) flips to
//! the new shard for everything scheduled afterwards. When the old and new
//! hosts live on different shards, the driver additionally moves the
//! affected flows' transport state (TCP sender/receiver machines, RTO
//! generations, UDP delivery counters) *and their still-pending calendar
//! events* — global `(time, seq)` keys intact — from the old owner replica
//! to the new one. Both shards are quiescent between windows, so the
//! transfer is race-free and the run stays byte-identical to the
//! single-threaded engine (the `#[cfg(test)]` equivalence reference in
//! `tests/sharded_equiv.rs`).
//!
//! # Limitations
//!
//! Degenerate partitions (one shard, or zero lookahead) run the driver
//! alone as a single-threaded fallback: the driver is a complete
//! simulation and simply runs everything itself.

use std::sync::mpsc;
use std::time::Instant;

use sv2p_metrics::Metrics;
use sv2p_packet::{FlowId, Pip, SwitchTag, Vip};
use sv2p_simcore::{merge_journals, FxHashMap, SimDuration, SimTime};
use sv2p_telemetry::profile::{HistKind, Phase, Profiler};
use sv2p_telemetry::{Sample, Tracer};
use sv2p_topology::{FatTreeConfig, NodeId, NodeKind, PodPartition, RoleMap, Routing, Topology};
use sv2p_vnet::{GatewayDirectory, MappingDb, Migration, Placement, Strategy};

use crate::churn::ChurnPlan;
use crate::config::SimConfig;
use crate::faults::FaultPlan;
use crate::flows::FlowSpec;
use crate::sim::{Event, Simulation};
use crate::wire::{
    ExecBlock, FlowXfer, GlobalEvent, JournalOp, MetricOp, MovedEvent, ShardSnapshot,
};

/// Driver → worker commands. The channel is bounded: the protocol is
/// strict request/response per window, so a small depth suffices.
enum ToWorker {
    /// Drain the shard calendar up to (strictly before) boundary key
    /// `(bt, bseq)`; answered with `FromWorker::Report`.
    Window { bt: SimTime, bseq: u64 },
    /// Deliver the merge's results: real global seqs for this window's
    /// schedulings (indexed by window ordinal — the parked events flush
    /// under theirs) plus incoming cross-shard events, already carrying
    /// real `(time, seq)` keys. Sent right after every merge and applied
    /// before any later command (the channel is FIFO), so calendars are
    /// consistent before the next window, snapshot, or migration transfer.
    Apply {
        grants: Vec<u64>,
        incoming: Vec<MovedEvent>,
    },
    Global(GlobalEvent),
    /// Extract the transport state and pending calendar events of flows
    /// whose endpoint VM `vm` just migrated off this shard; answered with
    /// `FromWorker::Migrated`.
    TakeMigrated { vm: usize },
    /// Install transport state and calendar events extracted from the old
    /// owner shard.
    PutMigrated {
        flows: Vec<FlowXfer>,
        moved: Vec<MovedEvent>,
    },
    Snapshot { widx: usize },
    Finish,
}

/// Worker → driver responses.
enum FromWorker {
    /// A drained window's journal and scalars, plus the worker-side
    /// wall-clock spent draining it (`0` when profiling is off — the
    /// worker times itself because the driver's barrier span cannot
    /// separate one shard's work from another's).
    Report {
        report: crate::wire::WindowReport,
        replay_ns: u64,
    },
    Migrated {
        flows: Vec<FlowXfer>,
        moved: Vec<MovedEvent>,
    },
    Snapshot(ShardSnapshot),
}

/// A pod-sharded, multi-threaded simulation whose observable results are
/// byte-identical to [`Simulation`] run single-threaded.
pub struct ShardedSimulation {
    driver: Simulation,
    replicas: Vec<Simulation>,
    partition: PodPartition,
    /// Executed-event count matching the single-threaded engine's
    /// (shard-window scalars plus driver-executed global events).
    exec_count: u64,
    /// Time of the last executed event anywhere; the driver's calendar
    /// clock can lag it (shard-local events never pop there).
    last_block_time: SimTime,
    /// Provisional → global packet-id map (tracing only).
    pkt_map: FxHashMap<u64, u64>,
    /// Barrier windows dispatched over the run (tracked even when
    /// profiling is off; perfbench schema v4's `window_count`).
    windows: u64,
    /// Cut-link events exchanged between shards over the run (tracked even
    /// when profiling is off; perfbench schema v4's `cut_events`).
    cut_count: u64,
    /// Run the driver alone, single-threaded (degenerate partition: one
    /// shard, or zero lookahead).
    fallback: bool,
    /// Shard-local counters have been folded into the master metrics.
    folded: bool,
    /// Driver-phase self-profiling (enabled by `SimConfig::profile`; in
    /// fallback mode the driver's own per-event profiler runs instead).
    profiler: Profiler,
}

impl ShardedSimulation {
    /// Builds a sharded experiment over at most `shards` shards (clamped
    /// by the partitioner to what the topology supports). All replicas are
    /// constructed identically from the same seed, so per-node RNG streams
    /// agree across the fleet.
    pub fn new(
        cfg: SimConfig,
        ft: &FatTreeConfig,
        strategy: &dyn Strategy,
        total_cache_entries: usize,
        vms_per_server: u32,
        shards: u16,
    ) -> Self {
        let driver = Simulation::new(cfg, ft, strategy, total_cache_entries, vms_per_server);
        let partition = PodPartition::new(driver.topology(), shards);
        let fallback = partition.shards() < 2 || partition.lookahead_ns() == 0;
        let mut replicas = Vec::new();
        if !fallback {
            for s in 0..partition.shards() {
                let mut rep =
                    Simulation::new(cfg, ft, strategy, total_cache_entries, vms_per_server);
                rep.attach_worker(s, partition.shard_map().to_vec());
                replicas.push(rep);
            }
        }
        let mut profiler = Profiler::new(cfg.profile && !fallback);
        if profiler.enabled() {
            profiler.ensure_shards(partition.shards() as usize);
        }
        ShardedSimulation {
            driver,
            replicas,
            partition,
            exec_count: 0,
            last_block_time: SimTime::ZERO,
            pkt_map: FxHashMap::default(),
            windows: 0,
            cut_count: 0,
            fallback,
            folded: false,
            profiler,
        }
    }

    /// The engine self-profiler: the driver-phase profiler when sharding
    /// is live, the driver simulation's per-event profiler in fallback.
    pub fn profiler(&self) -> &Profiler {
        if self.fallback {
            self.driver.profiler()
        } else {
            &self.profiler
        }
    }

    /// The partition in use.
    pub fn partition(&self) -> &PodPartition {
        &self.partition
    }

    /// True when the engine runs the driver alone (degenerate partition).
    pub fn is_fallback(&self) -> bool {
        self.fallback
    }

    /// Barrier windows dispatched to the workers so far (0 in fallback).
    pub fn window_count(&self) -> u64 {
        self.windows
    }

    /// Cut-link events exchanged between shards so far (0 in fallback).
    pub fn cut_events(&self) -> u64 {
        self.cut_count
    }

    /// The shard a VM's current host belongs to.
    fn owner_shard_of_vm(&self, vm: usize) -> usize {
        self.partition.shard_map()[self.driver.placement.node_of(vm).0 as usize] as usize
    }

    /// Registers the workload: the flow table is mirrored fleet-wide, and
    /// each start event is inserted directly at its owner shard's calendar
    /// under the global sequence number the single-threaded engine would
    /// have assigned it (the driver's counter stays the authority).
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        if self.fallback {
            self.driver.add_flows(specs);
            return;
        }
        // One spec at a time so a streaming source is never materialized:
        // replica mirroring, driver registration, and sequence reservation
        // all happen per flow, in the same global order as before.
        for spec in specs {
            let idx = self.driver.flows.len();
            let start = spec.start;
            let owner = self.owner_shard_of_vm(spec.src_vm);
            for rep in &mut self.replicas {
                rep.register_flows([spec.clone()]);
            }
            self.driver.register_flows([spec]);
            let seq = self.driver.events.reserve_seq();
            self.replicas[owner]
                .events
                .schedule_at_seq(start, seq, Event::FlowStart(idx));
        }
    }

    /// Registers a VM migration on the driver's calendar (migrations are
    /// global events) and mirrors the migration table into every worker
    /// replica (broadcast `Migrate` events carry table indices). At the
    /// migration instant the driver closes the window, broadcasts the
    /// placement/database update, and moves the affected flows' transport
    /// state and pending calendar events between owner shards.
    pub fn add_migration(&mut self, m: Migration) {
        for rep in &mut self.replicas {
            rep.register_migrations([m]);
        }
        self.driver.add_migration(m);
    }

    /// Registers a churn plan fleet-wide, consuming driver sequence
    /// numbers in the exact order the single-threaded engine would: flows
    /// first, then migrations, then timeline marks.
    pub fn apply_churn_plan(&mut self, plan: &ChurnPlan) {
        if self.fallback {
            self.driver.apply_churn_plan(plan);
            return;
        }
        self.add_flows(plan.flows.iter().cloned());
        for &m in &plan.migrations {
            self.add_migration(m);
        }
        self.driver.add_churn_marks(plan.marks.iter().copied());
    }

    /// Registers a fault plan on the driver (fault events are global) and
    /// mirrors the plan table into every replica (broadcast fault events
    /// carry plan indices).
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        for rep in &mut self.replicas {
            rep.register_fault_events(&plan);
        }
        self.driver.apply_fault_plan(plan);
    }

    /// Runs until every calendar drains (or the configured end of time).
    pub fn run(&mut self) {
        let horizon = self.driver.cfg.end_of_time.unwrap_or(SimTime::MAX);
        self.run_until(horizon);
    }

    /// Runs all events up to and including instant `t`. Resumable: the
    /// shard calendars persist across calls (pending buffers are always
    /// flushed before a window closes the run), so interleaving
    /// `run_until` with interventions behaves exactly like the
    /// single-threaded engine.
    pub fn run_until(&mut self, t: SimTime) {
        if self.fallback {
            self.driver.run_until(t);
            return;
        }
        let horizon = match self.driver.cfg.end_of_time {
            Some(h) => h.min(t),
            None => t,
        };
        let n = self.replicas.len();
        let Self {
            driver,
            replicas,
            partition,
            exec_count,
            last_block_time,
            pkt_map,
            windows,
            cut_count,
            profiler,
            ..
        } = self;
        let shard_map = partition.shard_map();
        let lookahead = partition.lookahead_ns();
        let prof = profiler.enabled();
        let run_t0 = prof.then(Instant::now);
        // Earliest pending-event time per shard. Exact at entry (pending
        // buffers are always empty between windows — grants are delivered
        // eagerly after every merge), kept current from window reports and
        // cross-shard deliveries. A stale-early bound only costs an empty
        // window; the protocol never lets a bound go stale-late.
        let mut next_t: Vec<Option<SimTime>> =
            replicas.iter().map(|r| r.events.peek_time()).collect();

        std::thread::scope(|scope| {
            let mut to_workers = Vec::with_capacity(n);
            let mut from_workers = Vec::with_capacity(n);
            for rep in replicas.iter_mut() {
                let (tx_cmd, rx_cmd) = mpsc::sync_channel::<ToWorker>(4);
                let (tx_res, rx_res) = mpsc::sync_channel::<FromWorker>(4);
                to_workers.push(tx_cmd);
                from_workers.push(rx_res);
                scope.spawn(move || {
                    while let Ok(msg) = rx_cmd.recv() {
                        match msg {
                            ToWorker::Window { bt, bseq } => {
                                let t0 = prof.then(Instant::now);
                                let report = rep.run_window(bt, bseq);
                                let replay_ns =
                                    t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                                let _ = tx_res.send(FromWorker::Report { report, replay_ns });
                            }
                            ToWorker::Apply { grants, incoming } => {
                                rep.apply_boundary(&grants, incoming)
                            }
                            ToWorker::Global(g) => rep.apply_global(g),
                            ToWorker::TakeMigrated { vm } => {
                                let flows = rep.extract_migrated_flows(vm);
                                let moved = rep.extract_migrated_events(vm);
                                let _ = tx_res.send(FromWorker::Migrated { flows, moved });
                            }
                            ToWorker::PutMigrated { flows, moved } => {
                                rep.inject_migrated_flows(flows);
                                rep.apply_boundary(&[], moved);
                            }
                            ToWorker::Snapshot { widx } => {
                                let _ =
                                    tx_res.send(FromWorker::Snapshot(rep.shard_snapshot(widx)));
                            }
                            ToWorker::Finish => break,
                        }
                    }
                });
            }

            loop {
                // Window boundary: one lookahead past the earliest pending
                // event anywhere, clipped so events at exactly `horizon`
                // still run — and closed early at the next global event's
                // exact (time, seq) key, which preserves the interleaving
                // of same-instant shard events around the global.
                let adv_t0 = prof.then(Instant::now);
                let gkey = driver.events.peek_key();
                let shard_min = next_t.iter().filter_map(|&t| t).min();
                let w0 = match (gkey.map(|(gt, _)| gt), shard_min) {
                    (None, None) => break,
                    (Some(g), None) => g,
                    (None, Some(s)) => s,
                    (Some(g), Some(s)) => g.min(s),
                };
                if w0 > horizon {
                    break;
                }
                let w_cap = SimTime::from_nanos(
                    w0.as_nanos()
                        .saturating_add(lookahead)
                        .min(horizon.as_nanos().saturating_add(1)),
                );
                let (bt, bseq, global_due) = match gkey {
                    Some((gt, gseq)) if gt < w_cap => (gt, gseq, true),
                    _ => (w_cap, 0, false),
                };
                let mut busy = vec![false; n];
                for (s, tx) in to_workers.iter().enumerate() {
                    // Shard events at exactly `bt` precede the boundary
                    // only when it is a global event's key (bseq > 0): the
                    // global was scheduled earlier, so same-instant shard
                    // children sort after it only if they are children of
                    // this window — which the drain handles itself.
                    if next_t[s].is_some_and(|nt| nt < bt || (nt == bt && bseq > 0)) {
                        busy[s] = true;
                        tx.send(ToWorker::Window { bt, bseq }).expect("worker alive");
                    }
                }
                if let Some(t0) = adv_t0 {
                    profiler.phase_add(Phase::WindowAdvance, t0.elapsed().as_nanos() as u64);
                }
                let any_busy = busy.iter().any(|&b| b);

                let barrier_t0 = (prof && any_busy).then(Instant::now);
                let mut journals: Vec<Vec<ExecBlock>> = Vec::with_capacity(n);
                let mut replay_by_shard = vec![0u64; n];
                let mut parked = vec![false; n];
                let mut shard_cal = 0u64;
                let mut shard_arena = 0u64;
                for (s, rx) in from_workers.iter().enumerate() {
                    if !busy[s] {
                        journals.push(Vec::new());
                        continue;
                    }
                    match rx.recv().expect("worker alive") {
                        FromWorker::Report { report, replay_ns } => {
                            replay_by_shard[s] = replay_ns;
                            *exec_count += report.executed;
                            if let Some(lt) = report.last_time {
                                *last_block_time = (*last_block_time).max(lt);
                            }
                            next_t[s] = match (report.cal_next, report.pending_min) {
                                (Some(a), Some(b)) => Some(a.min(b)),
                                (a, b) => a.or(b),
                            };
                            parked[s] = report.pending_min.is_some();
                            shard_cal += report.cal_len;
                            shard_arena += report.arena_live;
                            journals.push(report.blocks);
                        }
                        _ => unreachable!("no snapshot or transfer pending"),
                    }
                }
                if any_busy {
                    *windows += 1;
                }
                if let (Some(t0), true) = (barrier_t0, any_busy) {
                    // The driver's blocked-at-barrier span splits into the
                    // mean per-shard busy time (useful parallel work) and
                    // the remainder: what the average shard wasted waiting
                    // for the slowest one (imbalance + serialization).
                    let span = t0.elapsed().as_nanos() as u64;
                    let sum_r: u64 = replay_by_shard.iter().sum();
                    let avg_r = (sum_r / n as u64).min(span);
                    let max_r = replay_by_shard.iter().copied().max().unwrap_or(0);
                    profiler.phase_add(Phase::WorkerReplay, avg_r);
                    profiler.phase_add(Phase::BarrierWait, span - avg_r);
                    profiler.record(HistKind::WindowNs, span);
                    for (s, &r) in replay_by_shard.iter().enumerate() {
                        if busy[s] {
                            profiler.record(HistKind::ShardReplayNs, r);
                        }
                        profiler.shard_sample(
                            s,
                            r,
                            max_r.saturating_sub(r),
                            journals[s].len() as u64,
                        );
                    }
                    profiler.windows += 1;
                    // Deterministic once-per-window occupancy samples,
                    // composed across the fleet: the driver calendar holds
                    // only globals, the shard calendars hold the workload.
                    let (ready, wheel, overflow) = driver.events.occupancy_breakdown();
                    profiler.record(
                        HistKind::CalendarLen,
                        (ready + wheel + overflow) as u64 + shard_cal,
                    );
                    profiler.record(HistKind::CalendarOverflow, overflow as u64);
                    profiler.record(
                        HistKind::ArenaLive,
                        driver.arena_live() as u64 + shard_arena,
                    );
                }

                // Merge: replay the observables in global (time, seq)
                // order, grant every scheduling the global sequence number
                // the single-threaded engine would have assigned, and
                // resolve cut events to theirs.
                let merge_t0 = prof.then(Instant::now);
                let mut granted = vec![0u64; n];
                let mut outgoing: Vec<Vec<MovedEvent>> =
                    (0..n).map(|_| Vec::new()).collect();
                let mut cut_routed = 0u64;
                let grants = merge_journals(&journals, |shard, block: &ExecBlock| {
                    if prof {
                        profiler.journal_blocks += 1;
                        profiler.journal_ops += block.ops.len() as u64;
                        profiler.record(HistKind::JournalBlockOps, block.ops.len() as u64);
                    }
                    let base = driver.events.reserve_seqs(block.scheds as u64);
                    // `granted[shard]` counts this shard's schedulings in
                    // earlier blocks of this window, i.e. the window-wide
                    // ordinal of this block's first scheduling.
                    let k = granted[shard];
                    granted[shard] += block.scheds as u64;
                    for cut in &block.cuts {
                        cut_routed += 1;
                        outgoing[cut.to as usize].push(MovedEvent {
                            at: cut.at,
                            seq: base + (cut.ord as u64 - k),
                            ev: cut.ev.clone(),
                        });
                    }
                    for op in &block.ops {
                        match op {
                            JournalOp::PktAlloc(prov) => {
                                let id = driver.next_pkt_id;
                                driver.next_pkt_id += 1;
                                pkt_map.insert(*prov, id);
                            }
                            JournalOp::Metric(m) => match *m {
                                MetricOp::FlowStarted(f) => {
                                    driver.metrics.flow_started(FlowId(f), block.time)
                                }
                                MetricOp::FlowCompleted(f) => {
                                    driver.metrics.flow_completed(FlowId(f), block.time)
                                }
                                MetricOp::FirstPacketDelivered(f) => {
                                    driver
                                        .metrics
                                        .first_packet_delivered(FlowId(f), block.time)
                                }
                                MetricOp::Delivery { sent_ns, hops } => {
                                    driver.metrics.record_delivery(
                                        SimTime::from_nanos(sent_ns),
                                        block.time,
                                        hops,
                                    )
                                }
                            },
                            JournalOp::Trace(ev) => {
                                let mut ev = ev.clone();
                                if let Some(p) = ev.pkt {
                                    ev.pkt = Some(*pkt_map.get(&p).unwrap_or(&p));
                                }
                                driver.tracer_mut().record(ev);
                            }
                        }
                    }
                    (base..base + block.scheds as u64).collect()
                });
                if let Some(t0) = merge_t0 {
                    profiler.phase_add(Phase::JournalMerge, t0.elapsed().as_nanos() as u64);
                }

                // Cut exchange: deliver the grants for parked events and
                // the routed cut events before anything else reaches the
                // workers, so every calendar is consistent at the boundary.
                let cut_t0 = prof.then(Instant::now);
                *cut_count += cut_routed;
                for (s, g) in grants.into_iter().enumerate() {
                    let incoming = std::mem::take(&mut outgoing[s]);
                    if !parked[s] && incoming.is_empty() {
                        continue;
                    }
                    if let Some(m) = incoming.iter().map(|mv| mv.at).min() {
                        next_t[s] = Some(next_t[s].map_or(m, |nt| nt.min(m)));
                    }
                    to_workers[s]
                        .send(ToWorker::Apply {
                            grants: g,
                            incoming,
                        })
                        .expect("worker alive");
                }
                if let Some(t0) = cut_t0 {
                    profiler.phase_add(Phase::CutExchange, t0.elapsed().as_nanos() as u64);
                }

                let global_t0 = (prof && global_due).then(Instant::now);
                if global_due {
                    let se = driver.events.pop().expect("global event due");
                    debug_assert_eq!((se.time, se.seq), (bt, bseq));
                    if prof {
                        profiler.global_events += 1;
                    }
                    *exec_count += 1;
                    *last_block_time = (*last_block_time).max(se.time);
                    match se.payload {
                        Event::TelemetrySample => {
                            let widx =
                                (se.time.as_nanos() / driver.metrics.window_len_ns()) as usize;
                            for tx in &to_workers {
                                tx.send(ToWorker::Snapshot { widx }).expect("worker alive");
                            }
                            let mut s = ShardSnapshot::default();
                            for rx in &from_workers {
                                match rx.recv().expect("worker alive") {
                                    FromWorker::Snapshot(p) => {
                                        s.q_total += p.q_total;
                                        s.q_max = s.q_max.max(p.q_max);
                                        s.occ_tor += p.occ_tor;
                                        s.occ_spine += p.occ_spine;
                                        s.occ_core += p.occ_core;
                                        s.data_sent_cum += p.data_sent_cum;
                                        s.gateway_cum += p.gateway_cum;
                                        s.win_data_sent += p.win_data_sent;
                                        s.win_gateway += p.win_gateway;
                                        s.pending += p.pending;
                                    }
                                    _ => unreachable!("no window or transfer pending"),
                                }
                            }
                            let hit_rate_window = if s.win_data_sent == 0 {
                                None
                            } else {
                                Some(1.0 - s.win_gateway as f64 / s.win_data_sent as f64)
                            };
                            let hit_rate_cum = if s.data_sent_cum == 0 {
                                0.0
                            } else {
                                1.0 - s.gateway_cum as f64 / s.data_sent_cum as f64
                            };
                            let pending_events = driver.events.len() as u64 + s.pending;
                            driver.tracer_mut().samples.push(Sample {
                                t_ns: se.time.as_nanos(),
                                events_executed: *exec_count,
                                pending_events,
                                queue_pkts_total: s.q_total,
                                queue_pkts_max: s.q_max,
                                occ_tor: s.occ_tor,
                                occ_spine: s.occ_spine,
                                occ_core: s.occ_core,
                                hit_rate_window,
                                hit_rate_cum,
                                gateway_pkts_cum: s.gateway_cum,
                            });
                            if pending_events > 0 {
                                let period = SimDuration::from_nanos(
                                    driver.tracer().config().sample_every_ns,
                                );
                                driver.events.schedule_in(period, Event::TelemetrySample);
                            }
                        }
                        Event::FaultStart(i) => {
                            driver.apply_global(GlobalEvent::FaultStart(i));
                            for tx in &to_workers {
                                tx.send(ToWorker::Global(GlobalEvent::FaultStart(i)))
                                    .expect("worker alive");
                            }
                        }
                        Event::FaultEnd(i) => {
                            driver.apply_global(GlobalEvent::FaultEnd(i));
                            for tx in &to_workers {
                                tx.send(ToWorker::Global(GlobalEvent::FaultEnd(i)))
                                    .expect("worker alive");
                            }
                        }
                        Event::Migrate(i) => {
                            // Resolve old/new owner shards BEFORE the
                            // broadcast mutates the placement fleet-wide.
                            let m = driver.migration(i);
                            let vm = driver
                                .placement
                                .index_of(m.vip)
                                .expect("migrating unknown VIP");
                            let old_shard =
                                shard_map[driver.placement.node_of(vm).0 as usize];
                            let new_shard = shard_map[m.to_node.0 as usize];
                            driver.apply_global(GlobalEvent::Migrate(i));
                            for tx in &to_workers {
                                tx.send(ToWorker::Global(GlobalEvent::Migrate(i)))
                                    .expect("worker alive");
                            }
                            if old_shard != new_shard {
                                // Move the affected flows' transport state
                                // and pending calendar events to the new
                                // owner. Per-channel FIFO means both shards
                                // apply the migration (and any outstanding
                                // boundary grants) before the transfer.
                                to_workers[old_shard as usize]
                                    .send(ToWorker::TakeMigrated { vm })
                                    .expect("worker alive");
                                let (flows, moved) = match from_workers[old_shard as usize]
                                    .recv()
                                    .expect("worker alive")
                                {
                                    FromWorker::Migrated { flows, moved } => (flows, moved),
                                    _ => unreachable!("flow transfer pending"),
                                };
                                // The old shard's next-event bound may now
                                // be stale-early (its earliest event may
                                // have moved away) — harmless: an empty
                                // window refreshes it.
                                if let Some(mn) = moved.iter().map(|mv| mv.at).min() {
                                    let ns = new_shard as usize;
                                    next_t[ns] =
                                        Some(next_t[ns].map_or(mn, |nt| nt.min(mn)));
                                }
                                to_workers[new_shard as usize]
                                    .send(ToWorker::PutMigrated { flows, moved })
                                    .expect("worker alive");
                            }
                        }
                        Event::ChurnMark(i) => driver.on_churn_mark(i),
                        _ => unreachable!("not a global event"),
                    }
                }
                if let Some(t0) = global_t0 {
                    profiler.phase_add(Phase::GlobalExec, t0.elapsed().as_nanos() as u64);
                }
            }

            for tx in &to_workers {
                let _ = tx.send(ToWorker::Finish);
            }
        });
        if let Some(t0) = run_t0 {
            self.profiler.add_run_ns(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Folds order-free shard-local counters (byte/drop/hit counters,
    /// per-window tallies, transport statistics) into the master metrics.
    /// Runs once; call only after the run is complete.
    fn ensure_folded(&mut self) {
        if self.folded || self.fallback {
            return;
        }
        self.folded = true;
        for rep in &self.replicas {
            self.driver.metrics.absorb_shard(&rep.metrics);
            for f in &rep.flows {
                self.driver.metrics.reordered_segments += f.tcp_rx.reordered_segments;
                if let Some(tx) = &f.tcp_tx {
                    self.driver.metrics.retransmissions += tx.retransmits;
                }
            }
        }
    }

    /// Folds shard counters and returns the run summary (byte-identical
    /// to the single-threaded engine's).
    pub fn summary(&mut self) -> sv2p_metrics::RunSummary {
        self.ensure_folded();
        self.driver.summary()
    }

    /// Current virtual time: the later of the driver clock and the last
    /// shard-executed event (shard-local events never pop on the driver).
    pub fn now(&self) -> SimTime {
        self.driver.now().max(self.last_block_time)
    }

    /// Events executed, equal to the single-threaded count: every event a
    /// shard window drained plus every driver-executed global event.
    pub fn events_executed(&self) -> u64 {
        if self.fallback {
            self.driver.events_executed()
        } else {
            self.exec_count
        }
    }

    /// Pending-event high-water mark, summed over the driver calendar
    /// (globals only) and every shard calendar (the workload).
    pub fn peak_queue(&self) -> usize {
        self.driver.peak_queue() + self.replicas.iter().map(|r| r.peak_queue()).sum::<usize>()
    }

    /// In-flight packet high-water mark, summed over the driver's parking
    /// arena and every shard arena.
    pub fn peak_arena(&self) -> usize {
        self.driver.peak_arena() + self.replicas.iter().map(|r| r.peak_arena()).sum::<usize>()
    }

    /// The master telemetry tracer.
    pub fn tracer(&self) -> &Tracer {
        self.driver.tracer()
    }

    /// Mutable master tracer access.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        self.driver.tracer_mut()
    }

    /// The master metrics (complete after [`Self::summary`] folds shard
    /// counters).
    pub fn metrics(&self) -> &Metrics {
        &self.driver.metrics
    }

    /// Read-only topology access.
    pub fn topology(&self) -> &Topology {
        self.driver.topology()
    }

    /// Read-only routing access.
    pub fn routing(&self) -> &Routing {
        self.driver.routing()
    }

    /// Read-only role access.
    pub fn roles(&self) -> &RoleMap {
        self.driver.roles()
    }

    /// The gateway directory in use.
    pub fn gateway_directory(&self) -> &GatewayDirectory {
        self.driver.gateway_directory()
    }

    /// The VM placement (the driver's copy; broadcast migrations keep it
    /// in sync fleet-wide).
    pub fn placement(&self) -> &Placement {
        &self.driver.placement
    }

    /// Every cached `(switch, vip, pip)` line that disagrees with the
    /// ground-truth mapping database, read from each switch's owning shard
    /// (rows grouped by shard, cache-line order within an agent).
    pub fn stale_cache_entries(&self) -> Vec<(NodeId, Vip, Pip)> {
        if self.fallback {
            return self.driver.stale_cache_entries();
        }
        let mut out = Vec::new();
        for (s, rep) in self.replicas.iter().enumerate() {
            out.extend(
                rep.stale_cache_entries()
                    .into_iter()
                    .filter(|(n, _, _)| self.partition.shard_of(*n) as usize == s),
            );
        }
        out
    }

    /// The ground-truth V2P database.
    pub fn db(&self) -> &MappingDb {
        self.driver.db()
    }

    /// Bytes processed by each switch (summed across shards before the
    /// fold, read from the master after).
    pub fn per_switch_bytes(&self) -> Vec<(NodeId, NodeKind, u64)> {
        let mut out = self.driver.per_switch_bytes();
        if !self.folded && !self.fallback {
            for rep in &self.replicas {
                for (slot, (_, _, b)) in out.iter_mut().zip(rep.per_switch_bytes()) {
                    slot.2 += b;
                }
            }
        }
        out
    }

    /// Per-switch cache occupancy, read from each switch's owning shard
    /// (the only replica whose agent state evolves).
    pub fn cache_occupancy(&self) -> Vec<(SwitchTag, usize)> {
        if self.fallback {
            return self.driver.cache_occupancy();
        }
        let per_rep: Vec<Vec<(SwitchTag, usize)>> =
            self.replicas.iter().map(|r| r.cache_occupancy()).collect();
        self.driver
            .topology()
            .switches()
            .enumerate()
            .map(|(i, sw)| per_rep[self.partition.shard_of(sw.id) as usize][i])
            .collect()
    }

    /// Installs `entries` into the switch agent at `node`: traced on the
    /// master, mirrored silently into the owning shard.
    pub fn install_cache_entries(&mut self, node: NodeId, clear: bool, entries: &[(Vip, Pip)]) {
        self.driver.install_cache_entries(node, clear, entries);
        if !self.fallback {
            let owner = self.partition.shard_of(node) as usize;
            self.replicas[owner].install_entries_silent(node, clear, entries);
        }
    }

    /// Injects a switch failure (volatile cache loss) across the fleet.
    pub fn fail_switch(&mut self, node: NodeId) {
        self.driver.fail_switch(node);
        for rep in &mut self.replicas {
            rep.cold_reset_switch(node);
        }
    }

    /// Fails every switch at once across the fleet.
    pub fn fail_all_switches(&mut self) {
        self.driver.fail_all_switches();
        let switches: Vec<NodeId> = self.driver.topology().switches().map(|s| s.id).collect();
        for rep in &mut self.replicas {
            for &sw in &switches {
                rep.cold_reset_switch(sw);
            }
        }
    }

    /// Control-plane role reassignment, applied fleet-wide.
    pub fn reassign_switch_role(&mut self, node: NodeId, role: sv2p_topology::SwitchRole) {
        self.driver.reassign_switch_role(node, role);
        for rep in &mut self.replicas {
            rep.reassign_switch_role(node, role);
        }
    }

    /// Per-(src_vm, dst_vm) data-packet counts, merged across shards
    /// (sends are counted where they execute).
    pub fn traffic_matrix(&self) -> FxHashMap<(u32, u32), u64> {
        let mut out = self.driver.traffic_matrix().clone();
        for rep in &self.replicas {
            rep.merge_traffic_matrix_into(&mut out);
        }
        out
    }

    /// Resets traffic-matrix counters fleet-wide.
    pub fn clear_traffic_matrix(&mut self) {
        self.driver.clear_traffic_matrix();
        for rep in &mut self.replicas {
            rep.clear_traffic_matrix();
        }
    }
}
