//! The packet-level network data plane: what NS3 provided for the paper.
//!
//! A [`Simulation`] wires together:
//!
//! * the FatTree topology and ECMP routing (`sv2p-topology`);
//! * store-and-forward links with per-egress-port drop-tail queues
//!   ([`link`]);
//! * switches that run a per-switch [`sv2p_vnet::SwitchAgent`] fabricated by
//!   the experiment's [`sv2p_vnet::Strategy`] (SwitchV2P or any baseline);
//! * servers that drive TCP/UDP flows ([`flows`]) through per-server
//!   [`sv2p_vnet::HostAgent`]s, deliver to hosted VMs, and re-forward
//!   misdeliveries;
//! * translation gateways with the paper's 40 µs processing delay;
//! * VM migrations with follow-me rules (§5.2);
//! * full metrics recording (`sv2p-metrics`).
//!
//! The simulator is strategy-agnostic: nothing in this crate knows how
//! SwitchV2P caches — it only honors the [`sv2p_vnet::AgentOutput`] verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod churn;
pub mod config;
pub mod engine;
pub mod faults;
pub mod flows;
pub mod link;
pub mod sharded;
pub mod sim;
mod wire;

pub use arena::{PacketArena, PacketRef};
pub use churn::{ChurnMark, ChurnPlan, ChurnSpec};
pub use config::SimConfig;
pub use engine::Engine;
pub use faults::{FaultEvent, FaultPlan};
pub use flows::{FlowKind, FlowSpec};
pub use sharded::ShardedSimulation;
pub use sim::Simulation;
