//! Continuous-churn scenario generation (ROADMAP open item 3).
//!
//! The static sweeps exercise SwitchV2P against a fixed tenant population;
//! this module generates the regime where its learning/invalidation
//! machinery actually earns its keep: tenants arriving and departing under
//! a diurnally modulated Poisson process, per-tenant VM autoscaling, and
//! rolling migration waves that invalidate in-network mappings while
//! traffic is in flight.
//!
//! Everything is **precomputed**: [`ChurnPlan::generate`] expands a
//! [`ChurnSpec`] into plain flow specs, a migration table and a timeline of
//! [`ChurnMark`]s before the simulation starts. The simulator replays the
//! plan; it never samples randomness at run time. That keeps churn runs
//! byte-identical across seeds-equal runs and across the sharded engine
//! (the plan is registered identically on the driver and every replica),
//! and makes churn freely composable with a
//! [`crate::faults::FaultPlan`] — the two are independent event sources on
//! the same calendar.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sv2p_packet::Pip;
use sv2p_simcore::{SimRng, SimTime};
use sv2p_topology::NodeId;
use sv2p_vnet::{Migration, Placement};

use crate::flows::{FlowKind, FlowSpec};

/// Parameters of a continuous-churn scenario.
///
/// Rates are in virtual microseconds. The defaults describe a moderate
/// scenario on the small scaled topologies the experiment bins use; the
/// [`ChurnSpec::light`] / [`ChurnSpec::medium`] / [`ChurnSpec::heavy`]
/// presets are the three intensities the `churn` bin sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Master seed; every stream below forks from it.
    pub seed: u64,
    /// Scenario length: no arrival, departure or wave happens after this.
    pub horizon_us: u64,
    /// Mean tenant inter-arrival time at diurnal factor 1.0.
    pub arrival_mean_us: f64,
    /// Mean tenant lifetime (exponential).
    pub lifetime_mean_us: f64,
    /// Fewest VMs a tenant claims on arrival.
    pub vms_min: u32,
    /// Most VMs a tenant claims on arrival.
    pub vms_max: u32,
    /// Chance a tenant scales out mid-life, claiming extra VMs.
    pub autoscale_chance: f64,
    /// Arrival-rate multipliers over equal slices of the horizon (the
    /// time-of-day curve). Empty means a flat rate.
    pub diurnal: Vec<f64>,
    /// Rolling migration waves, spread evenly over the horizon.
    pub waves: u32,
    /// Fraction of currently-claimed VMs each wave migrates.
    pub wave_fraction: f64,
    /// Gap between consecutive migrations within one wave (rolling, not
    /// simultaneous).
    pub wave_stagger_us: u64,
    /// TCP flows each claimed VM sources over its tenant's lifetime.
    pub flows_per_vm: u32,
    /// Size of each of those flows.
    pub flow_bytes: u64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            seed: 1,
            horizon_us: 20_000,
            arrival_mean_us: 400.0,
            lifetime_mean_us: 6_000.0,
            vms_min: 2,
            vms_max: 6,
            autoscale_chance: 0.3,
            diurnal: vec![0.5, 1.0, 2.0, 1.0],
            waves: 3,
            wave_fraction: 0.25,
            wave_stagger_us: 5,
            flows_per_vm: 2,
            flow_bytes: 20_000,
        }
    }
}

impl ChurnSpec {
    /// Sparse arrivals, one gentle wave.
    pub fn light(seed: u64, horizon_us: u64) -> Self {
        ChurnSpec {
            seed,
            horizon_us,
            arrival_mean_us: horizon_us as f64 / 20.0,
            waves: 1,
            wave_fraction: 0.1,
            autoscale_chance: 0.1,
            ..Self::default()
        }
    }

    /// The default intensity.
    pub fn medium(seed: u64, horizon_us: u64) -> Self {
        ChurnSpec {
            seed,
            horizon_us,
            arrival_mean_us: horizon_us as f64 / 50.0,
            ..Self::default()
        }
    }

    /// Dense arrivals and aggressive migration storms.
    pub fn heavy(seed: u64, horizon_us: u64) -> Self {
        ChurnSpec {
            seed,
            horizon_us,
            arrival_mean_us: horizon_us as f64 / 120.0,
            lifetime_mean_us: horizon_us as f64 / 4.0,
            vms_max: 10,
            autoscale_chance: 0.5,
            waves: 5,
            wave_fraction: 0.5,
            ..Self::default()
        }
    }

    /// The horizon as a time.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_micros(self.horizon_us)
    }

    /// Arrival-rate multiplier in effect at `t_ns`.
    fn diurnal_factor(&self, t_ns: u64) -> f64 {
        if self.diurnal.is_empty() {
            return 1.0;
        }
        let horizon_ns = self.horizon_us.max(1) * 1_000;
        let bucket = ((t_ns as u128 * self.diurnal.len() as u128 / horizon_ns as u128) as usize)
            .min(self.diurnal.len() - 1);
        self.diurnal[bucket].max(1e-6)
    }
}

/// One point on the churn timeline, replayed by the simulator purely for
/// counters and telemetry (the state changes it describes — new flows,
/// migrations — are already materialized in the plan's tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnMark {
    /// A tenant claimed `vms` VMs (autoscale growth of an existing tenant
    /// surfaces as a second arrival mark for the same tenant id).
    Arrival {
        /// When.
        at: SimTime,
        /// Tenant id (dense, in arrival order).
        tenant: u32,
        /// VMs claimed.
        vms: u32,
    },
    /// A tenant released all its VMs.
    Departure {
        /// When.
        at: SimTime,
        /// Tenant id.
        tenant: u32,
        /// VMs released.
        vms: u32,
    },
    /// A rolling migration wave began.
    Wave {
        /// When the first migration of the wave fires.
        at: SimTime,
        /// Migrations in the wave.
        migrations: u32,
    },
}

impl ChurnMark {
    /// When the mark fires.
    pub fn at(&self) -> SimTime {
        match *self {
            ChurnMark::Arrival { at, .. }
            | ChurnMark::Departure { at, .. }
            | ChurnMark::Wave { at, .. } => at,
        }
    }
}

/// A fully expanded churn scenario: plain inputs for the simulator.
#[derive(Debug, Clone, Default)]
pub struct ChurnPlan {
    /// Tenant traffic, in generation order (flow ids follow this order).
    pub flows: Vec<FlowSpec>,
    /// Wave migrations, in schedule order.
    pub migrations: Vec<Migration>,
    /// The timeline, in time order.
    pub marks: Vec<ChurnMark>,
}

/// Timeline-sweep event kinds, ordered for deterministic tie-breaking at
/// equal instants: departures free VMs before arrivals claim them.
const K_DEPART: u8 = 0;
const K_ARRIVE: u8 = 1;
const K_SCALE: u8 = 2;
const K_WAVE: u8 = 3;

struct Tenant {
    vms: Vec<usize>,
    depart_ns: u64,
    rng: SimRng,
}

impl ChurnPlan {
    /// Expands `spec` against a placement. `servers` lists the candidate
    /// migration targets (every server's node and PIP, in topology order).
    ///
    /// The expansion is a single time-ordered sweep over a merged timeline
    /// of precomputed arrivals, the departures/autoscales they spawn, and
    /// the wave instants, with a free-list of VM indices — so the exact
    /// same spec always yields the exact same plan, byte for byte.
    pub fn generate(spec: &ChurnSpec, placement: &Placement, servers: &[(NodeId, Pip)]) -> Self {
        assert!(spec.vms_min >= 1 && spec.vms_min <= spec.vms_max);
        assert!(!servers.is_empty(), "no migration targets");
        let root = SimRng::new(spec.seed);
        let horizon_ns = spec.horizon_us * 1_000;

        // Precompute the diurnally modulated arrival instants.
        let mut arr_rng = root.fork(1);
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        while arrivals.len() < 100_000 {
            let mean = spec.arrival_mean_us / spec.diurnal_factor(t as u64 * 1_000);
            t += arr_rng.exponential(mean.max(1e-3));
            let at_ns = (t * 1_000.0) as u64;
            if at_ns >= horizon_ns {
                break;
            }
            arrivals.push(at_ns);
        }

        // Merge timeline: (time, kind, payload) min-heap.
        let mut timeline: BinaryHeap<Reverse<(u64, u8, u32)>> = BinaryHeap::new();
        for (i, &at_ns) in arrivals.iter().enumerate() {
            timeline.push(Reverse((at_ns, K_ARRIVE, i as u32)));
        }
        for j in 0..spec.waves {
            let at_ns = horizon_ns as u128 * (j as u128 + 1) / (spec.waves as u128 + 1);
            timeline.push(Reverse((at_ns as u64, K_WAVE, j)));
        }

        // Free VM indices; popped ascending.
        let mut free: Vec<usize> = (0..placement.len()).rev().collect();
        let mut tenants: Vec<Tenant> = Vec::new();
        let mut plan = ChurnPlan::default();

        while let Some(Reverse((at_ns, kind, payload))) = timeline.pop() {
            match kind {
                K_ARRIVE => {
                    let tid = tenants.len() as u32;
                    let mut rng = root.fork(1_000 + tid as u64);
                    let want = rng.gen_range(spec.vms_min..=spec.vms_max) as usize;
                    let claimed: Vec<usize> =
                        (0..want).map_while(|_| free.pop()).collect();
                    let life_ns =
                        (rng.exponential(spec.lifetime_mean_us).max(1.0) * 1_000.0) as u64;
                    let depart_ns = at_ns + life_ns;
                    if depart_ns < horizon_ns {
                        timeline.push(Reverse((depart_ns, K_DEPART, tid)));
                    }
                    if rng.chance(spec.autoscale_chance) {
                        let scale_ns = at_ns + life_ns / 2;
                        if scale_ns < horizon_ns {
                            timeline.push(Reverse((scale_ns, K_SCALE, tid)));
                        }
                    }
                    plan.marks.push(ChurnMark::Arrival {
                        at: SimTime::from_nanos(at_ns),
                        tenant: tid,
                        vms: claimed.len() as u32,
                    });
                    gen_tenant_flows(
                        spec, placement, &mut rng, &claimed, &claimed, at_ns, depart_ns,
                        horizon_ns, &mut plan.flows,
                    );
                    tenants.push(Tenant {
                        vms: claimed,
                        depart_ns,
                        rng,
                    });
                }
                K_SCALE => {
                    let tid = payload as usize;
                    let extra_want = (tenants[tid].vms.len() / 2).max(1);
                    let extra: Vec<usize> =
                        (0..extra_want).map_while(|_| free.pop()).collect();
                    if extra.is_empty() {
                        continue;
                    }
                    plan.marks.push(ChurnMark::Arrival {
                        at: SimTime::from_nanos(at_ns),
                        tenant: tid as u32,
                        vms: extra.len() as u32,
                    });
                    let tn = &mut tenants[tid];
                    let depart_ns = tn.depart_ns;
                    let mut rng = tn.rng.fork(2);
                    tn.vms.extend_from_slice(&extra);
                    let all = tn.vms.clone();
                    gen_tenant_flows(
                        spec, placement, &mut rng, &extra, &all, at_ns, depart_ns,
                        horizon_ns, &mut plan.flows,
                    );
                }
                K_DEPART => {
                    let tid = payload as usize;
                    let vms = std::mem::take(&mut tenants[tid].vms);
                    plan.marks.push(ChurnMark::Departure {
                        at: SimTime::from_nanos(at_ns),
                        tenant: tid as u32,
                        vms: vms.len() as u32,
                    });
                    // Released ascending so reclaim order is stable.
                    let mut vms = vms;
                    vms.sort_unstable_by(|a, b| b.cmp(a));
                    free.extend(vms);
                }
                _ => {
                    // K_WAVE: migrate a slice of everything currently
                    // claimed, rolling with a fixed stagger.
                    let mut rng = root.fork((1 << 32) + payload as u64);
                    let mut claimed: Vec<usize> = tenants
                        .iter()
                        .flat_map(|t| t.vms.iter().copied())
                        .collect();
                    rng.shuffle(&mut claimed);
                    let count = ((claimed.len() as f64 * spec.wave_fraction).ceil() as usize)
                        .min(claimed.len());
                    plan.marks.push(ChurnMark::Wave {
                        at: SimTime::from_nanos(at_ns),
                        migrations: count as u32,
                    });
                    for (i, &vm) in claimed[..count].iter().enumerate() {
                        let cur = placement.node_of(vm);
                        let mut pick = *rng.choose(servers);
                        if pick.0 == cur {
                            // Deterministic re-pick: next server in order.
                            let idx = servers.iter().position(|s| s.0 == pick.0).unwrap();
                            pick = servers[(idx + 1) % servers.len()];
                        }
                        let at = SimTime::from_nanos(
                            at_ns + i as u64 * spec.wave_stagger_us * 1_000,
                        );
                        plan.migrations.push(Migration::new(
                            at,
                            placement.vip_of(vm),
                            pick.0,
                            pick.1,
                        ));
                    }
                }
            }
        }
        plan
    }
}

/// Generates `spec.flows_per_vm` TCP flows sourced by each VM in `srcs`,
/// destined to other VMs of the same tenant (`pool`) when it has more than
/// one VM, spread uniformly over the tenant's lifetime.
#[allow(clippy::too_many_arguments)]
fn gen_tenant_flows(
    spec: &ChurnSpec,
    placement: &Placement,
    rng: &mut SimRng,
    srcs: &[usize],
    pool: &[usize],
    from_ns: u64,
    to_ns: u64,
    horizon_ns: u64,
    out: &mut Vec<FlowSpec>,
) {
    let end_ns = to_ns.min(horizon_ns).max(from_ns + 1);
    for &src in srcs {
        for _ in 0..spec.flows_per_vm {
            let dst = if pool.len() > 1 {
                // Another VM of the same tenant.
                let mut d = *rng.choose(pool);
                while d == src {
                    d = *rng.choose(pool);
                }
                d
            } else if placement.len() > 1 {
                // Solo tenant: talk to some other VM so it still loads the
                // network.
                let mut d = rng.gen_range(0..placement.len());
                while d == src {
                    d = rng.gen_range(0..placement.len());
                }
                d
            } else {
                continue;
            };
            let start = rng.gen_range(from_ns..end_ns);
            out.push(FlowSpec {
                src_vm: src,
                dst_vm: dst,
                start: SimTime::from_nanos(start),
                kind: FlowKind::Tcp {
                    bytes: spec.flow_bytes,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_topology::{FatTreeConfig, Topology};

    fn setup() -> (Topology, Placement, Vec<(NodeId, Pip)>) {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let placement = Placement::uniform(&topo, 4);
        let servers: Vec<(NodeId, Pip)> =
            topo.servers().map(|s| (s.id, s.pip)).collect();
        (topo, placement, servers)
    }

    #[test]
    fn same_spec_same_plan() {
        let (_t, placement, servers) = setup();
        let spec = ChurnSpec::medium(42, 20_000);
        let a = ChurnPlan::generate(&spec, &placement, &servers);
        let b = ChurnPlan::generate(&spec, &placement, &servers);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(!a.flows.is_empty(), "medium churn generates traffic");
        assert!(!a.marks.is_empty());
    }

    #[test]
    fn different_seed_different_plan() {
        let (_t, placement, servers) = setup();
        let a = ChurnPlan::generate(&ChurnSpec::medium(1, 20_000), &placement, &servers);
        let b = ChurnPlan::generate(&ChurnSpec::medium(2, 20_000), &placement, &servers);
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn plan_respects_horizon_and_wave_counts() {
        let (_t, placement, servers) = setup();
        let spec = ChurnSpec::heavy(7, 30_000);
        let plan = ChurnPlan::generate(&spec, &placement, &servers);
        let horizon = spec.horizon();
        for mark in &plan.marks {
            assert!(mark.at() < horizon, "mark past horizon: {mark:?}");
        }
        for f in &plan.flows {
            assert!(f.start < horizon);
            assert_ne!(f.src_vm, f.dst_vm);
        }
        let wave_marks: u32 = plan
            .marks
            .iter()
            .map(|m| match m {
                ChurnMark::Wave { migrations, .. } => *migrations,
                _ => 0,
            })
            .sum();
        assert_eq!(wave_marks as usize, plan.migrations.len());
        assert_eq!(
            plan.marks
                .iter()
                .filter(|m| matches!(m, ChurnMark::Wave { .. }))
                .count(),
            spec.waves as usize
        );
        // Every migration actually moves the VM somewhere else.
        for m in &plan.migrations {
            let vm = placement.index_of(m.vip).unwrap();
            assert_ne!(m.to_node, placement.node_of(vm));
        }
    }

    #[test]
    fn marks_are_time_ordered() {
        let (_t, placement, servers) = setup();
        let plan =
            ChurnPlan::generate(&ChurnSpec::medium(9, 25_000), &placement, &servers);
        for w in plan.marks.windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }
}
