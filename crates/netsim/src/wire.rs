//! Wire forms and journals for the sharded engine.
//!
//! A [`crate::sim::Simulation`] event holds packet bodies as arena handles,
//! which are meaningless outside the owning simulation. When a packet event
//! crosses the pod cut (or a migration moves a VM's pending flow events to
//! another shard), the packet travels by value as a [`WireEvent`].
//!
//! While executing a window, a shard keeps every follow-up event it
//! schedules: pod-local events land straight on its own calendar and
//! events past the window boundary park in a pending buffer, arena handles
//! intact. What it *journals* per executed event is only the lean
//! [`ExecBlock`]: how many schedulings the event performed (so the driver
//! can grant the matching run of global sequence numbers), any cut-link
//! events bound for other shards, and the order-sensitive observables
//! (metric updates, trace events, packet-id allocations). The driver
//! replays blocks across shards in global `(time, seq)` order, which makes
//! the master metrics and tracer ring byte-identical to a single-threaded
//! run — without re-executing or re-materializing anything.

use sv2p_packet::Packet;
use sv2p_simcore::{SeqRef, ShardState, SimTime};
use sv2p_telemetry::TraceEvent;
use sv2p_topology::{LinkId, NodeId};
use sv2p_transport::{TcpReceiver, TcpSender};

use crate::sim::Event;

/// A simulator event with packet bodies inlined, safe to move between
/// threads. Only [`WireEvent::LinkArrival`] can cross the cut mid-run;
/// the flow-addressed forms move between shards when a migration
/// re-homes a VM's pending calendar events. Global events (migrations,
/// faults, telemetry samples) never take this form: the driver executes
/// them itself.
#[derive(Debug, Clone)]
pub(crate) enum WireEvent {
    FlowStart(usize),
    UdpSend { flow: usize, idx: usize },
    LinkFree(LinkId),
    LinkArrival { link: LinkId, pkt: Packet },
    RtoTimer { flow: usize, gen: u64 },
    GatewayDone { node: NodeId, pkt: Packet },
    ReInject { node: NodeId, pkt: Packet },
    HostForward { node: NodeId, pkt: Packet },
}

/// Events the driver executes itself and broadcasts to every shard so
/// their mirrored state (blackouts, link health, loss rates, the mapping
/// database and VM placement) stays in sync. A migration additionally
/// moves the affected flows' transport state between the old and new
/// owner shards (see [`FlowXfer`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum GlobalEvent {
    FaultStart(usize),
    FaultEnd(usize),
    Migrate(usize),
}

/// Transport state of one flow in transit between shard replicas after a
/// migration moved the flow's endpoint VM to a node another shard owns.
///
/// A flow's mutable state lives only on the shard owning the relevant
/// endpoint: the sender machine (`tcp_tx`, the RTO generation and, for
/// TCP, the completion flag) evolves where ACKs are delivered — the source
/// VM's host — while the receiver side (`tcp_rx`, and for UDP the delivery
/// counter plus completion flag) evolves on the destination VM's host.
/// Since a migration is a global event, both shards are quiescent at the
/// exact instant the transfer happens, so moving the state preserves
/// bit-identical behaviour with the single-threaded engine.
#[derive(Debug)]
pub(crate) enum FlowXfer {
    /// Sender-side TCP machine, extracted from the source VM's old shard.
    Sender {
        flow: usize,
        tcp_tx: Option<TcpSender>,
        rto_gen: u64,
        completed: bool,
    },
    /// Receiver-side state, extracted from the destination VM's old shard.
    /// `completed` is authoritative only for UDP flows (TCP completion is
    /// decided on the sender side).
    Receiver {
        flow: usize,
        tcp_rx: TcpReceiver,
        udp_delivered: usize,
        completed: bool,
    },
}

/// A pending calendar event of a migrating flow, extracted with its global
/// `(time, seq)` key intact so the new owner re-inserts it unchanged.
#[derive(Debug)]
pub(crate) struct MovedEvent {
    pub at: SimTime,
    pub seq: u64,
    pub ev: WireEvent,
}

/// An order-sensitive metric update, deferred to the driver's master
/// [`sv2p_metrics::Metrics`]. Only the four flow-lifecycle operations are
/// order-sensitive (they push to per-flow latency/FCT accumulators whose
/// vector order the summary preserves); plain counters accumulate
/// shard-locally and are summed once at the end of the run.
#[derive(Debug, Clone)]
pub(crate) enum MetricOp {
    FlowStarted(u64),
    FlowCompleted(u64),
    FirstPacketDelivered(u64),
    Delivery { sent_ns: u64, hops: u16 },
}

/// One journaled observable, in handler execution order.
#[derive(Debug, Clone)]
pub(crate) enum JournalOp {
    /// The handler allocated a packet id (journaled only while tracing, to
    /// map the shard's provisional id to the global id stream).
    PktAlloc(u64),
    Metric(MetricOp),
    Trace(TraceEvent),
}

/// A follow-up event bound for another shard: a packet crossing the pod
/// cut. `ord` is the scheduling's window-wide ordinal, which the driver
/// resolves to a real global sequence number when the parent block
/// replays; the event reaches shard `to` before the next window opens.
/// `to` is resolved at emission time — ownership cannot drift before
/// delivery because placement only changes at global (boundary) events.
#[derive(Debug)]
pub(crate) struct CutEvent {
    pub to: u16,
    pub ord: u32,
    pub at: SimTime,
    pub ev: WireEvent,
}

/// Everything order-sensitive one event execution did, tagged with when
/// and as-whom it ran so the driver can merge blocks across shards.
/// `scheds` counts *every* scheduling the handler performed (local,
/// parked, or cut) — the driver grants that many consecutive global seqs.
/// Events with no schedulings and no observables leave no block at all;
/// their execution is reported only through the window's scalar counters.
#[derive(Debug)]
pub(crate) struct ExecBlock {
    pub time: SimTime,
    pub seq_ref: SeqRef,
    pub scheds: u32,
    pub cuts: Vec<CutEvent>,
    pub ops: Vec<JournalOp>,
}

impl sv2p_simcore::JournalBlock for ExecBlock {
    fn time(&self) -> SimTime {
        self.time
    }
    fn seq_ref(&self) -> SeqRef {
        self.seq_ref
    }
}

/// Per-shard worker state attached to a `Simulation` replica: which nodes
/// it owns, the current window boundary, ordinal bookkeeping, the pending
/// (past-boundary) buffer and the journal under construction.
#[derive(Debug)]
pub(crate) struct WorkerCtx {
    /// This replica's shard id.
    pub shard: u16,
    /// Node id → owning shard, from the pod partition.
    pub shard_map: Vec<u16>,
    /// Boundary time of the current window: follow-up events at or beyond
    /// it park in `pending` until the merge grants their real seqs.
    pub window_end: SimTime,
    /// Per-window child-ordinal bookkeeping.
    pub state: ShardState,
    /// Past-boundary events of the current window, arena handles intact:
    /// `(window ordinal, due time, event)`.
    pub pending: Vec<(u32, SimTime, Event)>,
    /// Journal of the event currently dispatching.
    pub cur_scheds: u32,
    pub cur_cuts: Vec<CutEvent>,
    pub cur_ops: Vec<JournalOp>,
    /// Next provisional packet-id counter (namespaced by shard in the top
    /// bits; remapped to the global id stream during replay when tracing).
    pub prov_next: u64,
    /// Cut-link events this shard emitted over the whole run.
    pub cut_events: u64,
}

impl WorkerCtx {
    pub fn new(shard: u16, shard_map: Vec<u16>) -> Self {
        WorkerCtx {
            shard,
            shard_map,
            window_end: SimTime::ZERO,
            state: ShardState::new(),
            pending: Vec::new(),
            cur_scheds: 0,
            cur_cuts: Vec::new(),
            cur_ops: Vec::new(),
            prov_next: 0,
            cut_events: 0,
        }
    }

    /// Provisional packet ids live in a per-shard namespace far above any
    /// realistic global id, so a collision with a real id is impossible
    /// and a leak (an unmapped provisional id in a trace) is obvious.
    pub fn provisional_pkt_id(&mut self) -> u64 {
        let id = ((self.shard as u64 + 1) << 48) | self.prov_next;
        self.prov_next += 1;
        id
    }
}

/// What one window execution produced, beyond the journal blocks: the
/// scalars the driver folds without replaying anything. `executed` counts
/// *every* popped event (including block-less ones); `cal_next` and
/// `pending_min` bound the shard's next event so the driver can size the
/// following window.
#[derive(Debug, Default)]
pub(crate) struct WindowReport {
    pub blocks: Vec<ExecBlock>,
    pub executed: u64,
    /// Time of the last executed event, if any.
    pub last_time: Option<SimTime>,
    /// Earliest key still on the shard calendar after the drain.
    pub cal_next: Option<SimTime>,
    /// Earliest due time in the parked (past-boundary) buffer.
    pub pending_min: Option<SimTime>,
    /// Events still pending on this shard (calendar + parked buffer) at
    /// window close — profiler occupancy samples.
    pub cal_len: u64,
    /// Live packets in this shard's arena at window close — profiler
    /// occupancy samples.
    pub arena_live: u64,
}

/// A shard's contribution to one telemetry sample: queue depths and cache
/// occupancy are only meaningful on the owning shard (everywhere else the
/// mirrored state is idle), so the driver sums these across shards.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardSnapshot {
    pub q_total: u64,
    pub q_max: u64,
    pub occ_tor: u64,
    pub occ_spine: u64,
    pub occ_core: u64,
    pub data_sent_cum: u64,
    pub gateway_cum: u64,
    pub win_data_sent: u64,
    pub win_gateway: u64,
    /// Events pending on this shard's calendar (plus parked buffer).
    pub pending: u64,
}
