//! Wire forms and journals for the sharded engine.
//!
//! A [`crate::sim::Simulation`] event holds packet bodies as arena handles,
//! which are meaningless outside the owning simulation. When the sharded
//! driver hands an event to a shard (or a shard returns a future event to
//! the driver), the packet travels by value as a [`WireEvent`].
//!
//! While executing a window, a shard records everything order-sensitive it
//! would have done to the global state — schedulings, metric updates,
//! trace events, packet-id allocations — as [`JournalOp`]s grouped into
//! per-event [`ExecBlock`]s. The driver replays the blocks of all shards
//! in global `(time, seq)` order, which makes the master metrics, tracer
//! ring and calendar byte-identical to a single-threaded run.

use sv2p_packet::Packet;
use sv2p_simcore::{SeqRef, ShardState, SimTime};
use sv2p_telemetry::TraceEvent;
use sv2p_topology::{LinkId, NodeId};
use sv2p_transport::{TcpReceiver, TcpSender};

/// A simulator event with packet bodies inlined, safe to move between the
/// driver and shard threads. Global events (migrations, faults, telemetry
/// samples) never take this form: the driver executes them itself.
#[derive(Debug, Clone)]
pub(crate) enum WireEvent {
    FlowStart(usize),
    UdpSend { flow: usize, idx: usize },
    LinkFree(LinkId),
    LinkArrival { link: LinkId, pkt: Packet },
    RtoTimer { flow: usize, gen: u64 },
    GatewayDone { node: NodeId, pkt: Packet },
    ReInject { node: NodeId, pkt: Packet },
    HostForward { node: NodeId, pkt: Packet },
}

/// Events the driver executes itself and broadcasts to every shard so
/// their mirrored state (blackouts, link health, loss rates, the mapping
/// database and VM placement) stays in sync. A migration additionally
/// moves the affected flows' transport state between the old and new
/// owner shards (see [`FlowXfer`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum GlobalEvent {
    FaultStart(usize),
    FaultEnd(usize),
    Migrate(usize),
}

/// Transport state of one flow in transit between shard replicas after a
/// migration moved the flow's endpoint VM to a node another shard owns.
///
/// A flow's mutable state lives only on the shard owning the relevant
/// endpoint: the sender machine (`tcp_tx`, the RTO generation and, for
/// TCP, the completion flag) evolves where ACKs are delivered — the source
/// VM's host — while the receiver side (`tcp_rx`, and for UDP the delivery
/// counter plus completion flag) evolves on the destination VM's host.
/// Since a migration is a global event, both shards are quiescent at the
/// exact instant the transfer happens, so moving the state preserves
/// bit-identical behaviour with the single-threaded oracle.
#[derive(Debug)]
pub(crate) enum FlowXfer {
    /// Sender-side TCP machine, extracted from the source VM's old shard.
    Sender {
        flow: usize,
        tcp_tx: Option<TcpSender>,
        rto_gen: u64,
        completed: bool,
    },
    /// Receiver-side state, extracted from the destination VM's old shard.
    /// `completed` is authoritative only for UDP flows (TCP completion is
    /// decided on the sender side).
    Receiver {
        flow: usize,
        tcp_rx: TcpReceiver,
        udp_delivered: usize,
        completed: bool,
    },
}

/// An order-sensitive metric update, deferred to the driver's master
/// [`sv2p_metrics::Metrics`]. Only the four flow-lifecycle operations are
/// order-sensitive (they push to per-flow latency/FCT accumulators whose
/// vector order the summary preserves); plain counters accumulate
/// shard-locally and are summed once at the end of the run.
#[derive(Debug, Clone)]
pub(crate) enum MetricOp {
    FlowStarted(u64),
    FlowCompleted(u64),
    FirstPacketDelivered(u64),
    Delivery { sent_ns: u64, hops: u16 },
}

/// One journaled side effect, in handler execution order.
#[derive(Debug, Clone)]
pub(crate) enum JournalOp {
    /// The handler scheduled a follow-up event at `at`. `wire` is `None`
    /// when the shard executed it locally within the window (the driver
    /// only burns a sequence number to stay in step); otherwise the event
    /// returns to the driver's calendar.
    Sched {
        at: SimTime,
        wire: Option<WireEvent>,
    },
    /// The handler allocated a packet id (journaled only while tracing, to
    /// map the shard's provisional id to the global id stream).
    PktAlloc(u64),
    Metric(MetricOp),
    Trace(TraceEvent),
}

/// Everything one event execution did, tagged with when and as-whom it
/// ran so the driver can merge blocks across shards.
#[derive(Debug)]
pub(crate) struct ExecBlock {
    pub time: SimTime,
    pub seq_ref: SeqRef,
    pub ops: Vec<JournalOp>,
}

impl sv2p_simcore::JournalBlock for ExecBlock {
    fn time(&self) -> SimTime {
        self.time
    }
    fn seq_ref(&self) -> SeqRef {
        self.seq_ref
    }
}

/// Per-shard worker state attached to a `Simulation` replica: which nodes
/// it owns, the current window bound, sequence bookkeeping, and the
/// journal under construction.
#[derive(Debug)]
pub(crate) struct WorkerCtx {
    /// This replica's shard id.
    pub shard: u16,
    /// Node id → owning shard, from the pod partition.
    pub shard_map: Vec<u16>,
    /// Exclusive upper bound of the current window: follow-up events at or
    /// beyond it return to the driver instead of executing locally.
    pub window_end: SimTime,
    /// Local-seq → global-identity bookkeeping.
    pub state: ShardState,
    /// Journal ops of the event currently dispatching.
    pub cur_ops: Vec<JournalOp>,
    /// Next provisional packet-id counter (namespaced by shard in the top
    /// bits; remapped to the global id stream during replay when tracing).
    pub prov_next: u64,
}

impl WorkerCtx {
    pub fn new(shard: u16, shard_map: Vec<u16>) -> Self {
        WorkerCtx {
            shard,
            shard_map,
            window_end: SimTime::ZERO,
            state: ShardState::new(),
            cur_ops: Vec::new(),
            prov_next: 0,
        }
    }

    /// Provisional packet ids live in a per-shard namespace far above any
    /// realistic global id, so a collision with a real id is impossible
    /// and a leak (an unmapped provisional id in a trace) is obvious.
    pub fn provisional_pkt_id(&mut self) -> u64 {
        let id = ((self.shard as u64 + 1) << 48) | self.prov_next;
        self.prov_next += 1;
        id
    }
}

/// A shard's contribution to one telemetry sample: queue depths and cache
/// occupancy are only meaningful on the owning shard (everywhere else the
/// mirrored state is idle), so the driver sums these across shards.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardSnapshot {
    pub q_total: u64,
    pub q_max: u64,
    pub occ_tor: u64,
    pub occ_spine: u64,
    pub occ_core: u64,
    pub data_sent_cum: u64,
    pub gateway_cum: u64,
    pub win_data_sent: u64,
    pub win_gateway: u64,
}
