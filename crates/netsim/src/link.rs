//! Store-and-forward links with drop-tail egress queues.
//!
//! Each directed link owns the egress queue of its sending port. A packet
//! occupies the transmitter for its serialization time and arrives at the
//! receiver one propagation delay after transmission completes — the classic
//! output-queued switch model NS3's point-to-point devices use.
//!
//! Links queue [`PacketRef`] handles, not packets: the packet body stays in
//! the simulation's [`crate::arena::PacketArena`]. The wire size is sampled
//! once at enqueue (it cannot change while queued — only node logic rewrites
//! headers, and a queued packet is owned by the link) and carried next to
//! the handle so serialization math never touches the arena.

use std::collections::VecDeque;

use sv2p_simcore::{SimDuration, SimTime};

use crate::arena::PacketRef;

/// Runtime state of one directed link.
#[derive(Debug)]
pub struct LinkState {
    /// Line rate, bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Buffer limit in bytes (drop-tail beyond it).
    pub buffer_bytes: u64,
    /// Queued `(packet, wire bytes)` awaiting transmission (the head entry
    /// is the one on the wire).
    queue: VecDeque<(PacketRef, u32)>,
    /// Bytes currently queued.
    queued_bytes: u64,
    /// True while a packet is being serialized.
    busy: bool,
    /// Drops due to a full buffer.
    pub drops: u64,
    /// Injected loss probability per enqueued packet (sum of the active
    /// `LossRate` faults covering this link; 0 when healthy).
    pub loss_rate: f64,
    /// Drops due to injected stochastic loss.
    pub losses: u64,
}

/// What [`LinkState::enqueue`] decided.
#[derive(Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The link was idle: start transmitting now. Contains the serialization
    /// time; arrival fires after `ser + delay`, the transmitter frees after
    /// `ser`.
    StartTx(SimDuration),
    /// The packet joined the queue; transmission will start when the wire
    /// frees up.
    Queued,
    /// Buffer full; the packet was dropped (the caller frees it).
    Dropped,
    /// The packet was discarded by injected stochastic loss before reaching
    /// the queue (the caller frees it).
    Lost,
}

impl LinkState {
    /// A link with the given rate, delay and buffer.
    pub fn new(bandwidth_bps: u64, delay: SimDuration, buffer_bytes: u64) -> Self {
        LinkState {
            bandwidth_bps,
            delay,
            buffer_bytes,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            drops: 0,
            loss_rate: 0.0,
            losses: 0,
        }
    }

    /// Serialization time of `wire_bytes` on this link.
    pub fn ser_time(&self, wire_bytes: u32) -> SimDuration {
        SimDuration::serialization(wire_bytes, self.bandwidth_bps)
    }

    /// Offers a packet to the egress port, first exposing it to the link's
    /// injected loss. `draw` is a uniform sample in `[0, 1)` from the
    /// simulation's dedicated fault RNG stream; a draw below the active
    /// loss rate discards the packet before it reaches the queue (the
    /// corruption/loss point of a real wire).
    pub fn enqueue_with_loss(
        &mut self,
        pkt: PacketRef,
        wire_bytes: u32,
        draw: f64,
    ) -> EnqueueOutcome {
        if self.loss_rate > 0.0 && draw < self.loss_rate {
            self.losses += 1;
            return EnqueueOutcome::Lost;
        }
        self.enqueue(pkt, wire_bytes)
    }

    /// Offers a packet to the egress port.
    pub fn enqueue(&mut self, pkt: PacketRef, wire_bytes: u32) -> EnqueueOutcome {
        if !self.busy {
            self.busy = true;
            let ser = self.ser_time(wire_bytes);
            // The in-flight packet sits at the head.
            self.queue.push_front((pkt, wire_bytes));
            EnqueueOutcome::StartTx(ser)
        } else if self.queued_bytes + wire_bytes as u64 <= self.buffer_bytes {
            self.queued_bytes += wire_bytes as u64;
            self.queue.push_back((pkt, wire_bytes));
            EnqueueOutcome::Queued
        } else {
            self.drops += 1;
            EnqueueOutcome::Dropped
        }
    }

    /// Transmission of the head packet finished: returns the transmitted
    /// packet (to schedule its arrival) and, if more are queued, the
    /// serialization time of the next one (to schedule the next tx-done).
    pub fn tx_done(&mut self) -> (PacketRef, Option<SimDuration>) {
        debug_assert!(self.busy, "tx_done on idle link");
        let (sent, _) = self.queue.pop_front().expect("tx_done with empty queue");
        match self.queue.front() {
            Some(&(_, wire)) => {
                self.queued_bytes -= wire as u64;
                let ser = self.ser_time(wire);
                (sent, Some(ser))
            }
            None => {
                self.busy = false;
                (sent, None)
            }
        }
    }

    /// Arrival time of a packet whose transmission starts at `now`.
    pub fn arrival_after(&self, ser: SimDuration) -> SimDuration {
        ser + self.delay
    }

    /// Queue depth in packets (excludes the in-flight one).
    pub fn queue_len(&self) -> usize {
        self.queue.len().saturating_sub(self.busy as usize)
    }

    /// Arrival instant helper for tests.
    pub fn arrival_at(&self, now: SimTime, ser: SimDuration) -> SimTime {
        now + self.arrival_after(ser)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_packet::packet::MSS;

    /// Wire size of an MSS data packet with default tunnel options
    /// (60 bytes of headers).
    const MSS_WIRE: u32 = MSS + 60;

    fn link() -> LinkState {
        // 100G, 1us, room for exactly two MSS packets in the queue.
        LinkState::new(
            100_000_000_000,
            SimDuration::from_micros(1),
            2 * MSS_WIRE as u64,
        )
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = link();
        match l.enqueue(PacketRef(0), MSS_WIRE) {
            EnqueueOutcome::StartTx(ser) => {
                // 1060 B at 100G = 84.8 -> 85 ns.
                assert_eq!(ser.as_nanos(), 85);
                assert_eq!(l.arrival_after(ser).as_nanos(), 1085);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link();
        assert!(matches!(
            l.enqueue(PacketRef(0), MSS_WIRE),
            EnqueueOutcome::StartTx(_)
        ));
        assert_eq!(l.enqueue(PacketRef(1), MSS_WIRE), EnqueueOutcome::Queued);
        assert_eq!(l.enqueue(PacketRef(2), MSS_WIRE), EnqueueOutcome::Queued);
        assert_eq!(l.enqueue(PacketRef(3), MSS_WIRE), EnqueueOutcome::Dropped);
        assert_eq!(l.drops, 1);
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn tx_done_drains_fifo() {
        let mut l = link();
        l.enqueue(PacketRef(1), MSS_WIRE);
        l.enqueue(PacketRef(2), 100 + 60);
        let (sent, next) = l.tx_done();
        assert_eq!(sent, PacketRef(1));
        let ser_b = next.expect("second packet pending");
        // 160 B at 100G = 12.8 -> 13 ns.
        assert_eq!(ser_b.as_nanos(), 13);
        let (sent2, next2) = l.tx_done();
        assert_eq!(sent2, PacketRef(2));
        assert!(next2.is_none());
        // Link is idle again.
        assert!(matches!(
            l.enqueue(PacketRef(3), 61),
            EnqueueOutcome::StartTx(_)
        ));
    }

    #[test]
    fn injected_loss_discards_below_rate_only() {
        let mut l = link();
        // Healthy link: the draw is irrelevant.
        assert!(matches!(
            l.enqueue_with_loss(PacketRef(0), MSS_WIRE, 0.0),
            EnqueueOutcome::StartTx(_)
        ));
        l.tx_done();
        l.loss_rate = 0.01;
        assert_eq!(
            l.enqueue_with_loss(PacketRef(1), MSS_WIRE, 0.005),
            EnqueueOutcome::Lost
        );
        assert_eq!(l.losses, 1);
        assert!(matches!(
            l.enqueue_with_loss(PacketRef(2), MSS_WIRE, 0.5),
            EnqueueOutcome::StartTx(_)
        ));
        // Loss drops never consume buffer space.
        assert_eq!(l.queue_len(), 0);
    }

    #[test]
    fn freed_buffer_accepts_again() {
        let mut l = link();
        l.enqueue(PacketRef(0), MSS_WIRE);
        l.enqueue(PacketRef(1), MSS_WIRE);
        l.enqueue(PacketRef(2), MSS_WIRE);
        assert_eq!(l.enqueue(PacketRef(3), MSS_WIRE), EnqueueOutcome::Dropped);
        l.tx_done(); // frees one queue slot
        assert_eq!(l.enqueue(PacketRef(4), MSS_WIRE), EnqueueOutcome::Queued);
    }
}
