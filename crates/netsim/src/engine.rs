//! The engine facade: one experiment-facing type over the single-threaded
//! [`Simulation`] and the multi-core [`ShardedSimulation`].
//!
//! Harnesses pick the engine with one knob (`shards`): `shards <= 1` is the
//! plain simulator, anything larger builds the pod-sharded engine. Both
//! produce byte-identical results (see `tests/sharded_equiv.rs`), so the
//! choice is purely about wall-clock — experiment code never branches on
//! it.

use sv2p_metrics::{Metrics, RunSummary};
use sv2p_packet::{Pip, SwitchTag, Vip};
use sv2p_simcore::{FxHashMap, SimTime};
use sv2p_telemetry::profile::Profiler;
use sv2p_telemetry::Tracer;
use sv2p_topology::{FatTreeConfig, NodeId, NodeKind, RoleMap, Routing, SwitchRole, Topology};
use sv2p_vnet::{GatewayDirectory, MappingDb, Migration, Placement, Strategy};

use crate::churn::ChurnPlan;
use crate::config::SimConfig;
use crate::faults::FaultPlan;
use crate::flows::FlowSpec;
use crate::sharded::ShardedSimulation;
use crate::sim::Simulation;

/// A simulation engine: single-threaded or pod-sharded, same observables.
pub enum Engine {
    /// The plain event-loop simulator (`shards <= 1`).
    Single(Box<Simulation>),
    /// The windowed multi-core engine (`shards > 1`).
    Sharded(Box<ShardedSimulation>),
}

impl Engine {
    /// Builds the engine implied by `shards`: the plain simulator for
    /// `shards <= 1`, the pod-sharded engine otherwise (which itself falls
    /// back to single-threaded execution on degenerate partitions).
    pub fn new(
        cfg: SimConfig,
        ft: &FatTreeConfig,
        strategy: &dyn Strategy,
        total_cache_entries: usize,
        vms_per_server: u32,
        shards: u16,
    ) -> Self {
        if shards <= 1 {
            Engine::Single(Box::new(Simulation::new(
                cfg,
                ft,
                strategy,
                total_cache_entries,
                vms_per_server,
            )))
        } else {
            Engine::Sharded(Box::new(ShardedSimulation::new(
                cfg,
                ft,
                strategy,
                total_cache_entries,
                vms_per_server,
                shards,
            )))
        }
    }

    /// The number of shards actually executing in parallel: 1 for the
    /// single-threaded engine (including sharded fallback).
    pub fn shards(&self) -> u16 {
        match self {
            Engine::Single(_) => 1,
            Engine::Sharded(s) => {
                if s.is_fallback() {
                    1
                } else {
                    s.partition().shards()
                }
            }
        }
    }

    /// Barrier windows the sharded engine dispatched so far (0 for the
    /// single-threaded engine and the sharded fallback).
    pub fn window_count(&self) -> u64 {
        match self {
            Engine::Single(_) => 0,
            Engine::Sharded(s) => s.window_count(),
        }
    }

    /// Cut-link events exchanged between shards so far (0 for the
    /// single-threaded engine and the sharded fallback).
    pub fn cut_events(&self) -> u64 {
        match self {
            Engine::Single(_) => 0,
            Engine::Sharded(s) => s.cut_events(),
        }
    }

    /// Registers the workload.
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        match self {
            Engine::Single(s) => s.add_flows(specs),
            Engine::Sharded(s) => s.add_flows(specs),
        }
    }

    /// Registers a VM migration (sharded: a global event whose flow state
    /// moves between owner shards at the migration instant).
    pub fn add_migration(&mut self, m: Migration) {
        match self {
            Engine::Single(s) => s.add_migration(m),
            Engine::Sharded(s) => s.add_migration(m),
        }
    }

    /// Registers a precomputed churn plan: its flows, migration waves, and
    /// timeline marks.
    pub fn apply_churn_plan(&mut self, plan: &ChurnPlan) {
        match self {
            Engine::Single(s) => s.apply_churn_plan(plan),
            Engine::Sharded(s) => s.apply_churn_plan(plan),
        }
    }

    /// Registers a fault plan.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        match self {
            Engine::Single(s) => s.apply_fault_plan(plan),
            Engine::Sharded(s) => s.apply_fault_plan(plan),
        }
    }

    /// Runs until the calendar drains.
    pub fn run(&mut self) {
        match self {
            Engine::Single(s) => s.run(),
            Engine::Sharded(s) => s.run(),
        }
    }

    /// Runs all events up to and including instant `t`.
    pub fn run_until(&mut self, t: SimTime) {
        match self {
            Engine::Single(s) => s.run_until(t),
            Engine::Sharded(s) => s.run_until(t),
        }
    }

    /// Finalizes and returns the run summary.
    pub fn summary(&mut self) -> RunSummary {
        match self {
            Engine::Single(s) => s.summary(),
            Engine::Sharded(s) => s.summary(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        match self {
            Engine::Single(s) => s.now(),
            Engine::Sharded(s) => s.now(),
        }
    }

    /// Events executed so far (identical across engines).
    pub fn events_executed(&self) -> u64 {
        match self {
            Engine::Single(s) => s.events_executed(),
            Engine::Sharded(s) => s.events_executed(),
        }
    }

    /// Pending-event high-water mark of the global calendar.
    pub fn peak_queue(&self) -> usize {
        match self {
            Engine::Single(s) => s.peak_queue(),
            Engine::Sharded(s) => s.peak_queue(),
        }
    }

    /// In-flight packet high-water mark (summed across shard arenas).
    pub fn peak_arena(&self) -> usize {
        match self {
            Engine::Single(s) => s.peak_arena(),
            Engine::Sharded(s) => s.peak_arena(),
        }
    }

    /// The telemetry tracer.
    pub fn tracer(&self) -> &Tracer {
        match self {
            Engine::Single(s) => s.tracer(),
            Engine::Sharded(s) => s.tracer(),
        }
    }

    /// Mutable tracer access.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        match self {
            Engine::Single(s) => s.tracer_mut(),
            Engine::Sharded(s) => s.tracer_mut(),
        }
    }

    /// The engine self-profiler (disabled unless `SimConfig::profile`).
    pub fn profiler(&self) -> &Profiler {
        match self {
            Engine::Single(s) => s.profiler(),
            Engine::Sharded(s) => s.profiler(),
        }
    }

    /// The master metrics. Order-sensitive counters (flow lifecycle) are
    /// exact at any instant; order-free shard-local counters are folded in
    /// by [`Self::summary`].
    pub fn metrics(&self) -> &Metrics {
        match self {
            Engine::Single(s) => &s.metrics,
            Engine::Sharded(s) => s.metrics(),
        }
    }

    /// Read-only topology access.
    pub fn topology(&self) -> &Topology {
        match self {
            Engine::Single(s) => s.topology(),
            Engine::Sharded(s) => s.topology(),
        }
    }

    /// Read-only routing access.
    pub fn routing(&self) -> &Routing {
        match self {
            Engine::Single(s) => s.routing(),
            Engine::Sharded(s) => s.routing(),
        }
    }

    /// Read-only role access.
    pub fn roles(&self) -> &RoleMap {
        match self {
            Engine::Single(s) => s.roles(),
            Engine::Sharded(s) => s.roles(),
        }
    }

    /// The gateway directory in use.
    pub fn gateway_directory(&self) -> &GatewayDirectory {
        match self {
            Engine::Single(s) => s.gateway_directory(),
            Engine::Sharded(s) => s.gateway_directory(),
        }
    }

    /// The VM placement.
    pub fn placement(&self) -> &Placement {
        match self {
            Engine::Single(s) => &s.placement,
            Engine::Sharded(s) => s.placement(),
        }
    }

    /// The ground-truth V2P database.
    pub fn db(&self) -> &MappingDb {
        match self {
            Engine::Single(s) => s.db(),
            Engine::Sharded(s) => s.db(),
        }
    }

    /// Bytes processed by each switch, in `topology().switches()` (NodeId)
    /// order — deterministic across engines and shard counts.
    pub fn per_switch_bytes(&self) -> Vec<(NodeId, NodeKind, u64)> {
        match self {
            Engine::Single(s) => s.per_switch_bytes(),
            Engine::Sharded(s) => s.per_switch_bytes(),
        }
    }

    /// Per-switch cache occupancy, in `topology().switches()` (NodeId)
    /// order — deterministic across engines and shard counts.
    pub fn cache_occupancy(&self) -> Vec<(SwitchTag, usize)> {
        match self {
            Engine::Single(s) => s.cache_occupancy(),
            Engine::Sharded(s) => s.cache_occupancy(),
        }
    }

    /// Every cached `(switch, vip, pip)` line that disagrees with the
    /// ground-truth mapping database — the stale entries a migration left
    /// behind that no strategy machinery has corrected yet.
    pub fn stale_cache_entries(&self) -> Vec<(NodeId, Vip, Pip)> {
        match self {
            Engine::Single(s) => s.stale_cache_entries(),
            Engine::Sharded(s) => s.stale_cache_entries(),
        }
    }

    /// Installs cache entries into the switch agent at `node`.
    pub fn install_cache_entries(&mut self, node: NodeId, clear: bool, entries: &[(Vip, Pip)]) {
        match self {
            Engine::Single(s) => s.install_cache_entries(node, clear, entries),
            Engine::Sharded(s) => s.install_cache_entries(node, clear, entries),
        }
    }

    /// Injects a switch failure (volatile cache loss).
    pub fn fail_switch(&mut self, node: NodeId) {
        match self {
            Engine::Single(s) => s.fail_switch(node),
            Engine::Sharded(s) => s.fail_switch(node),
        }
    }

    /// Fails every switch at once.
    pub fn fail_all_switches(&mut self) {
        match self {
            Engine::Single(s) => s.fail_all_switches(),
            Engine::Sharded(s) => s.fail_all_switches(),
        }
    }

    /// Control-plane role reassignment.
    pub fn reassign_switch_role(&mut self, node: NodeId, role: SwitchRole) {
        match self {
            Engine::Single(s) => s.reassign_switch_role(node, role),
            Engine::Sharded(s) => s.reassign_switch_role(node, role),
        }
    }

    /// Per-(src_vm, dst_vm) data-packet counts (requires
    /// `SimConfig::record_traffic_matrix`).
    pub fn traffic_matrix(&self) -> FxHashMap<(u32, u32), u64> {
        match self {
            Engine::Single(s) => s.traffic_matrix().clone(),
            Engine::Sharded(s) => s.traffic_matrix(),
        }
    }

    /// Resets traffic-matrix counters.
    pub fn clear_traffic_matrix(&mut self) {
        match self {
            Engine::Single(s) => s.clear_traffic_matrix(),
            Engine::Sharded(s) => s.clear_traffic_matrix(),
        }
    }
}
