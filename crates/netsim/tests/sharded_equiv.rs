//! The sharded engine's determinism contract: every observable — summary,
//! telemetry samples, trace stream, per-switch counters — is byte-identical
//! to the single-threaded oracle, for any shard count.

use proptest::prelude::*;
use sv2p_baselines::NoCache;
use sv2p_netsim::faults::{FaultEvent, FaultPlan};
use sv2p_netsim::{ChurnPlan, ChurnSpec, FlowKind, FlowSpec, ShardedSimulation, SimConfig, Simulation};
use sv2p_simcore::{SimDuration, SimTime};
use sv2p_transport::UdpSchedule;
use sv2p_telemetry::TelemetryConfig;
use sv2p_topology::{FatTreeConfig, LinkId, NodeId};
use sv2p_vnet::{Migration, Strategy};
use switchv2p::{SwitchV2P, SwitchV2PConfig};

fn cfg_with_telemetry() -> SimConfig {
    SimConfig {
        telemetry: TelemetryConfig::enabled(),
        ..SimConfig::default()
    }
}

fn tcp_udp_mix(vms: usize, n: usize) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec {
            src_vm: (i * 7) % vms,
            dst_vm: (i * 13 + 29) % vms,
            start: SimTime::from_micros(2 * i as u64),
            kind: if i % 3 == 0 {
                FlowKind::Udp {
                    schedule: UdpSchedule::cbr(
                        SimTime::from_micros(2 * i as u64),
                        SimDuration::from_micros(40),
                        48_000_000,
                        1000,
                    ),
                }
            } else {
                FlowKind::Tcp { bytes: 60_000 }
            },
        })
        .filter(|f| f.src_vm != f.dst_vm)
        .collect()
}

/// Runs the oracle and the sharded engine on the same workload and asserts
/// every observable matches.
fn assert_equivalent(
    cfg: SimConfig,
    strategy: &dyn Strategy,
    cache_entries: usize,
    shards: u16,
    plan: Option<FaultPlan>,
) {
    assert_equivalent_full(cfg, strategy, cache_entries, shards, plan, Vec::new(), None);
}

/// [`assert_equivalent`] plus migrations and an optional churn plan.
fn assert_equivalent_full(
    cfg: SimConfig,
    strategy: &dyn Strategy,
    cache_entries: usize,
    shards: u16,
    plan: Option<FaultPlan>,
    migrations: Vec<Migration>,
    churn: Option<&ChurnPlan>,
) {
    let ft = FatTreeConfig::scaled_ft8(2);

    let mut oracle = Simulation::new(cfg, &ft, strategy, cache_entries, 4);
    let flows = tcp_udp_mix(oracle.placement.len(), 30);
    if let Some(p) = plan.clone() {
        oracle.apply_fault_plan(p);
    }
    oracle.add_flows(flows.clone());
    for &m in &migrations {
        oracle.add_migration(m);
    }
    if let Some(c) = churn {
        oracle.apply_churn_plan(c);
    }
    oracle.run();

    let mut sharded = ShardedSimulation::new(cfg, &ft, strategy, cache_entries, 4, shards);
    assert!(
        !sharded.is_fallback(),
        "this topology must support real sharding"
    );
    assert!(sharded.partition().shards() >= 2);
    if let Some(p) = plan {
        sharded.apply_fault_plan(p);
    }
    sharded.add_flows(flows);
    for &m in &migrations {
        sharded.add_migration(m);
    }
    if let Some(c) = churn {
        sharded.apply_churn_plan(c);
    }
    sharded.run();

    // Raw telemetry first (summary() folds shard counters).
    assert_eq!(
        oracle.tracer().samples,
        sharded.tracer().samples,
        "telemetry samples must match"
    );
    assert_eq!(
        oracle.tracer().render_events_jsonl(),
        sharded.tracer().render_events_jsonl(),
        "trace streams must match byte-for-byte"
    );
    assert_eq!(oracle.events_executed(), sharded.events_executed());
    assert_eq!(oracle.traffic_matrix(), &sharded.traffic_matrix());
    let sum_o = format!("{:?}", oracle.summary());
    let sum_s = format!("{:?}", sharded.summary());
    assert_eq!(sum_o, sum_s, "summaries must match byte-for-byte");
    assert_eq!(oracle.per_switch_bytes(), sharded.per_switch_bytes());
    assert_eq!(oracle.cache_occupancy(), sharded.cache_occupancy());
}

#[test]
fn switchv2p_matches_oracle_across_shard_counts() {
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());
    for shards in [2, 4, 8] {
        assert_equivalent(cfg_with_telemetry(), &strategy, 4096, shards, None);
    }
}

#[test]
fn nocache_matches_oracle_without_telemetry() {
    assert_equivalent(SimConfig::default(), &NoCache, 0, 4, None);
}

#[test]
fn faulted_run_matches_oracle() {
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());
    let ft = FatTreeConfig::scaled_ft8(2);
    let probe = Simulation::new(SimConfig::default(), &ft, &NoCache, 0, 4);
    let tor = probe
        .topology()
        .switches()
        .next()
        .map(|n| n.id)
        .expect("switches exist");
    let uplink = probe.topology().out_links[tor.0 as usize][0];
    let plan = FaultPlan::from_events([
        FaultEvent::SwitchReboot {
            node: tor,
            at: SimTime::from_micros(100),
            blackout: SimDuration::from_micros(50),
        },
        FaultEvent::LinkDown {
            link: uplink,
            at: SimTime::from_micros(120),
            up_at: SimTime::from_micros(400),
        },
        FaultEvent::LossRate {
            link: None,
            rate: 0.002,
            from: SimTime::from_micros(50),
            until: SimTime::from_micros(600),
        },
    ])
    .unwrap();
    assert_equivalent(cfg_with_telemetry(), &strategy, 4096, 4, Some(plan));
}

/// Builds a migration for placement VM `vm` to server `srv` (shifted to the
/// next server when `srv` already hosts the VM, so every migration actually
/// moves) at `at_us`, against a probe simulation's topology.
fn migration_for(probe: &Simulation, vm: usize, srv: usize, at_us: u64) -> Migration {
    let servers: Vec<_> = probe.topology().servers().map(|n| (n.id, n.pip)).collect();
    let vm = vm % probe.placement.len();
    let mut pick = servers[srv % servers.len()];
    if pick.0 == probe.placement.node_of(vm) {
        pick = servers[(srv + 1) % servers.len()];
    }
    Migration::new(
        SimTime::from_micros(at_us),
        probe.placement.vip_of(vm),
        pick.0,
        pick.1,
    )
}

/// Migrations are global events on the sharded engine: mapping state updates
/// fleet-wide and live flow transport state moves between owner shards. The
/// result must still be byte-identical to the oracle.
#[test]
fn migrated_run_matches_oracle() {
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());
    let ft = FatTreeConfig::scaled_ft8(2);
    let probe = Simulation::new(SimConfig::default(), &ft, &NoCache, 0, 4);
    let n_servers = probe.topology().servers().count();
    // Cross-pod moves (far server indices) so flow state crosses shards.
    let migrations = vec![
        migration_for(&probe, 1, n_servers - 1, 150),
        migration_for(&probe, 9, n_servers / 2, 300),
        migration_for(&probe, 29, n_servers - 3, 450),
    ];
    for shards in [2, 4] {
        assert_equivalent_full(
            cfg_with_telemetry(),
            &strategy,
            4096,
            shards,
            None,
            migrations.clone(),
            None,
        );
    }
}

/// A full churn plan — tenant arrivals/departures, autoscaling, migration
/// waves, timeline marks — with the gateway overload model enabled must
/// stay byte-identical too.
#[test]
fn churned_run_matches_oracle() {
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());
    let ft = FatTreeConfig::scaled_ft8(2);
    let mut cfg = cfg_with_telemetry();
    cfg.gateway.queue_cap = 16;
    let probe = Simulation::new(cfg, &ft, &strategy, 1024, 4);
    let servers: Vec<_> = probe.topology().servers().map(|n| (n.id, n.pip)).collect();
    let spec = ChurnSpec::medium(7, 2_000);
    let plan = ChurnPlan::generate(&spec, &probe.placement, &servers);
    assert!(!plan.migrations.is_empty(), "medium churn must produce waves");
    assert_equivalent_full(cfg, &strategy, 1024, 4, None, Vec::new(), Some(&plan));
}

#[test]
fn one_shard_request_falls_back_to_oracle() {
    let ft = FatTreeConfig::scaled_ft8(2);
    let mut sharded = ShardedSimulation::new(SimConfig::default(), &ft, &NoCache, 0, 4, 1);
    assert!(sharded.is_fallback());
    let flows = tcp_udp_mix(sharded.placement().len(), 10);
    sharded.add_flows(flows.clone());
    sharded.run();

    let mut oracle = Simulation::new(SimConfig::default(), &ft, &NoCache, 0, 4);
    oracle.add_flows(flows);
    oracle.run();
    assert_eq!(
        format!("{:?}", oracle.summary()),
        format!("{:?}", sharded.summary())
    );
}

/// Mid-run control-plane interventions (cache installs, reboots) must stay
/// equivalent too: the failure-recovery experiments drive the engine this
/// way.
#[test]
fn midrun_interventions_match_oracle() {
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());
    let ft = FatTreeConfig::scaled_ft8(2);

    let mut oracle = Simulation::new(cfg_with_telemetry(), &ft, &strategy, 4096, 4);
    let flows = tcp_udp_mix(oracle.placement.len(), 24);
    oracle.add_flows(flows.clone());
    oracle.run_until(SimTime::from_micros(150));
    oracle.fail_all_switches();
    oracle.run();

    let mut sharded = ShardedSimulation::new(cfg_with_telemetry(), &ft, &strategy, 4096, 4, 4);
    sharded.add_flows(flows);
    sharded.run_until(SimTime::from_micros(150));
    sharded.fail_all_switches();
    sharded.run();

    assert_eq!(oracle.tracer().samples, sharded.tracer().samples);
    assert_eq!(
        format!("{:?}", oracle.summary()),
        format!("{:?}", sharded.summary())
    );
    assert_eq!(oracle.cache_occupancy(), sharded.cache_occupancy());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random fault plans: the sharded engine must track the oracle through
    /// arbitrary reboot/link/outage/loss schedules.
    #[test]
    fn random_fault_plans_stay_equivalent(
        events in proptest::collection::vec(
            (0u8..4, any::<u32>(), 0u64..400, 1u64..300, 0.0f64..0.2),
            0..5,
        ),
        shards in 2u16..6,
    ) {
        let ft = FatTreeConfig::scaled_ft8(2);
        let probe = Simulation::new(SimConfig::default(), &ft, &NoCache, 0, 4);
        let switches: Vec<NodeId> = probe.topology().switches().map(|n| n.id).collect();
        let gateways: Vec<NodeId> = probe.topology().gateways().map(|n| n.id).collect();
        let n_links = probe.topology().links.len();
        let mut plan = FaultPlan::new();
        for &(kind, idx, start_us, dur_us, rate) in &events {
            let at = SimTime::from_micros(start_us);
            let end = SimTime::from_micros(start_us + dur_us);
            let ev = match kind {
                0 => FaultEvent::SwitchReboot {
                    node: switches[idx as usize % switches.len()],
                    at,
                    blackout: SimDuration::from_micros(dur_us),
                },
                1 => FaultEvent::LinkDown {
                    link: LinkId((idx as usize % n_links) as u32),
                    at,
                    up_at: end,
                },
                2 => FaultEvent::GatewayOutage {
                    node: gateways[idx as usize % gateways.len()],
                    at,
                    up_at: end,
                },
                _ => FaultEvent::LossRate { link: None, rate, from: at, until: end },
            };
            plan.push(ev).expect("generated events are well-formed");
        }
        assert_equivalent(SimConfig::default(), &NoCache, 0, shards, Some(plan));
    }

    /// Random migration plans: arbitrary (VM, target server, instant)
    /// triples — including repeat migrations of the same VM — must keep the
    /// sharded engine equivalent through ownership flips and flow transfer.
    #[test]
    fn random_migration_plans_stay_equivalent(
        moves in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 50u64..500),
            1..6,
        ),
        shards in 2u16..6,
    ) {
        let ft = FatTreeConfig::scaled_ft8(2);
        let probe = Simulation::new(SimConfig::default(), &ft, &NoCache, 0, 4);
        let n_servers = probe.topology().servers().count();
        let migrations: Vec<Migration> = moves
            .iter()
            .map(|&(vm, srv, at_us)| {
                migration_for(&probe, vm as usize, srv as usize % n_servers, at_us)
            })
            .collect();
        assert_equivalent_full(
            SimConfig::default(),
            &NoCache,
            0,
            shards,
            None,
            migrations,
            None,
        );
    }
}

/// Pins the ordering contract behind the sharded engine's positional
/// merges: `per_switch_bytes` and `cache_occupancy` rows follow
/// `topology().switches()` enumeration order (ascending `NodeId`) on both
/// engines, so figure output never depends on engine choice or shard count.
#[test]
fn switch_observables_follow_ascending_node_id_order() {
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());

    let mut oracle = Simulation::new(cfg_with_telemetry(), &ft, &strategy, 1024, 4);
    let flows = tcp_udp_mix(oracle.placement.len(), 12);
    oracle.add_flows(flows.clone());
    oracle.run();

    let mut sharded =
        ShardedSimulation::new(cfg_with_telemetry(), &ft, &strategy, 1024, 4, 4);
    sharded.add_flows(flows);
    sharded.run();

    for sim_bytes in [oracle.per_switch_bytes(), sharded.per_switch_bytes()] {
        let ids: Vec<NodeId> = sim_bytes.iter().map(|&(id, _, _)| id).collect();
        assert!(
            ids.windows(2).all(|w| w[0].0 < w[1].0),
            "per_switch_bytes rows must be strictly ascending by NodeId"
        );
        let expected: Vec<NodeId> = oracle.topology().switches().map(|n| n.id).collect();
        assert_eq!(ids, expected, "rows must mirror topology().switches()");
    }
    assert_eq!(
        oracle.cache_occupancy(),
        sharded.cache_occupancy(),
        "cache occupancy must agree row-for-row across engines"
    );
    assert_eq!(
        oracle.cache_occupancy().len(),
        oracle.topology().switches().count(),
        "one occupancy row per switch, in switches() order"
    );
}
