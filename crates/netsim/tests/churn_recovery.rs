//! Stale-mapping recovery under churn: migration waves leave stale cache
//! entries behind, and SwitchV2P's misdelivery-driven invalidation must
//! correct every one of them while traffic keeps flowing.

use sv2p_netsim::{ChurnPlan, ChurnSpec, FlowKind, FlowSpec, SimConfig, Simulation};
use sv2p_simcore::SimTime;
use sv2p_telemetry::TelemetryConfig;
use sv2p_topology::FatTreeConfig;
use switchv2p::{SwitchV2P, SwitchV2PConfig};

/// TCP flows all aimed at a handful of destination VMs, starting at
/// `base_us + 5·i`, so their mappings are cached fleet-wide.
fn convergent_flows(vms: usize, dsts: &[usize], n: usize, base_us: u64, bytes: u64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec {
            src_vm: (i * 7 + 1) % vms,
            dst_vm: dsts[i % dsts.len()],
            start: SimTime::from_micros(base_us + 5 * i as u64),
            kind: FlowKind::Tcp { bytes },
        })
        .filter(|f| f.src_vm != f.dst_vm)
        .collect()
}

/// Every stale mapping a migration wave creates is corrected before the run
/// drains: no cached `(switch, vip, pip)` line disagrees with the mapping
/// database at end-of-run, while the wave demonstrably produced stale hits
/// (so the assertion is not vacuous).
#[test]
fn no_stale_entry_survives_a_migration_wave() {
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());
    let ft = FatTreeConfig::scaled_ft8(2);
    let mut sim = Simulation::new(SimConfig::default(), &ft, &strategy, 4096, 4);

    let n_servers = sim.topology().servers().count();
    let servers: Vec<_> = sim.topology().servers().map(|n| (n.id, n.pip)).collect();
    let dsts = [3usize, 11, 19, 27];
    // Pre-wave traffic seeds caches fleet-wide; post-wave flows start
    // unresolved, hit the now-stale switch entries, and trigger the
    // misdelivery → invalidation machinery. The wide post-wave fan-in keeps
    // correcting until every switch the earlier traffic touched is clean.
    sim.add_flows(convergent_flows(sim.placement.len(), &dsts, 24, 0, 120_000));
    sim.add_flows(convergent_flows(sim.placement.len(), &dsts, 96, 600, 60_000));

    // The wave: every hot destination moves to the far end of the fabric at
    // 400 µs, while its flows are mid-transfer.
    for (i, &vm) in dsts.iter().enumerate() {
        let target = servers[(n_servers - 1 - i) % n_servers];
        assert_ne!(target.0, sim.placement.node_of(vm), "wave must move the VM");
        sim.add_migration(sv2p_vnet::Migration::new(
            SimTime::from_micros(400 + 5 * i as u64),
            sim.placement.vip_of(vm),
            target.0,
            target.1,
        ));
    }
    sim.run();

    let s = sim.summary();
    assert_eq!(s.migrations, dsts.len() as u64);
    assert!(
        s.stale_cache_hits > 0,
        "the wave must actually expose stale entries (got none — scenario is vacuous)"
    );
    assert!(
        s.recovery_max_us > 0.0,
        "stale hits imply a non-zero recovery window"
    );
    let stale = sim.stale_cache_entries();
    assert!(
        stale.is_empty(),
        "stale mappings survived to end-of-run: {stale:?}"
    );
}

/// Churn timeline marks surface in both the metrics counters and the
/// telemetry stream.
#[test]
fn churn_marks_hit_metrics_and_telemetry() {
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());
    let ft = FatTreeConfig::scaled_ft8(2);
    let cfg = SimConfig {
        telemetry: TelemetryConfig::enabled(),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, &ft, &strategy, 1024, 4);
    let servers: Vec<_> = sim.topology().servers().map(|n| (n.id, n.pip)).collect();
    let spec = ChurnSpec::medium(3, 2_000);
    let plan = ChurnPlan::generate(&spec, &sim.placement, &servers);
    let arrivals = plan
        .marks
        .iter()
        .filter(|m| matches!(m, sv2p_netsim::ChurnMark::Arrival { .. }))
        .count() as u64;
    let waves = plan
        .marks
        .iter()
        .filter(|m| matches!(m, sv2p_netsim::ChurnMark::Wave { .. }))
        .count() as u64;
    assert!(arrivals > 0 && waves > 0, "medium churn must mark arrivals and waves");
    sim.apply_churn_plan(&plan);
    sim.run();

    let s = sim.summary();
    assert_eq!(s.churn_arrivals, arrivals);
    assert_eq!(s.migration_waves, waves);
    assert_eq!(s.migrations, plan.migrations.len() as u64);
    let jsonl = sim.tracer().render_events_jsonl();
    assert!(jsonl.contains("\"churn_arrival\""), "arrival marks must be traced");
    assert!(jsonl.contains("\"migration_wave\""), "wave marks must be traced");
}
