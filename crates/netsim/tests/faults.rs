//! Fault-injection integration tests: reboot storms, link failures, gateway
//! outages, stochastic loss — and the determinism contract for all of them.

use proptest::prelude::*;
use sv2p_baselines::NoCache;
use sv2p_netsim::faults::{FaultEvent, FaultPlan};
use sv2p_netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use sv2p_simcore::{SimDuration, SimTime};
use sv2p_topology::{FatTreeConfig, LinkId, NodeId, SwitchRole};
use sv2p_vnet::Strategy;
use switchv2p::{SwitchV2P, SwitchV2PConfig};

fn sim_with(strategy: &dyn Strategy, cache_entries: usize) -> Simulation {
    let ft = FatTreeConfig::scaled_ft8(2);
    Simulation::new(SimConfig::default(), &ft, strategy, cache_entries, 4)
}

/// `n` TCP flows spread over distinct VM pairs and start times.
fn tcp_flows(sim: &Simulation, n: usize, bytes: u64) -> Vec<FlowSpec> {
    let vms = sim.placement.len();
    (0..n)
        .map(|i| FlowSpec {
            src_vm: (i * 7) % vms,
            dst_vm: (i * 13 + 29) % vms,
            start: SimTime::from_micros(2 * i as u64),
            kind: FlowKind::Tcp { bytes },
        })
        .filter(|f| f.src_vm != f.dst_vm)
        .collect()
}

#[test]
fn reboot_storm_loses_no_flows_with_switchv2p() {
    let strategy = SwitchV2P::new(SwitchV2PConfig::default());
    let mut sim = sim_with(&strategy, 4096);
    let flows = tcp_flows(&sim, 40, 100_000);
    let n = flows.len() as u64;
    sim.add_flows(flows);

    // Let the cache hierarchy warm up mid-transfer...
    sim.run_until(SimTime::from_micros(150));
    let warm: usize = sim.cache_occupancy().iter().map(|&(_, o)| o).sum();
    assert!(warm > 0, "caches must have warmed before the storm");

    // ...then reboot every switch at once: all volatile state is gone.
    sim.fail_all_switches();
    let cold: usize = sim.cache_occupancy().iter().map(|&(_, o)| o).sum();
    assert_eq!(cold, 0, "the storm must cold-start every cache");

    sim.run();
    let s = sim.summary();
    assert_eq!(s.flows_completed, n, "{s:?}");
    assert!(s.fault_count >= 1, "the storm must be annotated in metrics");
}

#[test]
fn stochastic_loss_is_absorbed_by_retransmission() {
    let mut sim = sim_with(&NoCache, 0);
    let plan = FaultPlan::from_events([FaultEvent::LossRate {
        link: None,
        rate: 0.001,
        from: SimTime::ZERO,
        until: SimTime::from_millis(500),
    }])
    .unwrap();
    sim.apply_fault_plan(plan);
    let flows = tcp_flows(&sim, 25, 60_000);
    let n = flows.len() as u64;
    sim.add_flows(flows);
    sim.run();
    let s = sim.summary();
    assert_eq!(s.flows_completed, n, "{s:?}");
    assert!(s.drops_loss > 0, "0.1% fabric loss must hit something: {s:?}");
    assert!(
        s.retransmissions > 0,
        "losses must be repaired by TCP retransmission: {s:?}"
    );
}

#[test]
fn gateway_outage_rides_the_rto_until_restoration() {
    let mut sim = sim_with(&NoCache, 0);
    let gws: Vec<NodeId> = sim.topology().gateways().map(|n| n.id).collect();
    assert!(!gws.is_empty());
    let plan = FaultPlan::from_events(gws.iter().map(|&node| FaultEvent::GatewayOutage {
        node,
        at: SimTime::ZERO,
        up_at: SimTime::from_micros(300),
    }))
    .unwrap();
    sim.apply_fault_plan(plan);
    let flows = tcp_flows(&sim, 10, 20_000);
    let n = flows.len() as u64;
    sim.add_flows(flows);
    sim.run();
    let s = sim.summary();
    assert_eq!(s.flows_completed, n, "{s:?}");
    assert!(s.drops_blackout > 0, "the outage must eat resolutions: {s:?}");
    assert!(
        s.retransmissions > 0,
        "senders must recover via RTO retries: {s:?}"
    );
}

#[test]
fn downed_uplink_rehashes_onto_surviving_port() {
    // Fail one ToR-to-spine uplink for the whole run: ECMP must shift every
    // flow onto the surviving uplink with zero unroutable drops.
    let mut sim = sim_with(&NoCache, 0);
    let tor = sim
        .topology()
        .switches()
        .find(|n| sim.roles().role(n.id) == Some(SwitchRole::Tor))
        .map(|n| n.id)
        .expect("a plain ToR exists");
    let uplinks: Vec<LinkId> = sim.topology().out_links[tor.0 as usize]
        .iter()
        .copied()
        .filter(|&l| {
            let to = sim.topology().link(l).to;
            sim.topology().node(to).kind.is_switch()
        })
        .collect();
    assert!(uplinks.len() >= 2, "scaled_ft8(2) ToRs have 2 uplinks");
    let plan = FaultPlan::from_events([FaultEvent::LinkDown {
        link: uplinks[0],
        at: SimTime::ZERO,
        up_at: SimTime::from_millis(100),
    }])
    .unwrap();
    sim.apply_fault_plan(plan);
    let flows = tcp_flows(&sim, 20, 30_000);
    let n = flows.len() as u64;
    sim.add_flows(flows);
    sim.run();
    let s = sim.summary();
    assert_eq!(s.flows_completed, n, "{s:?}");
    assert_eq!(
        s.drops_unroutable, 0,
        "a surviving port must absorb all rerouted traffic: {s:?}"
    );
}

#[test]
fn host_uplink_down_drops_unroutable_then_recovers() {
    let mut sim = sim_with(&NoCache, 0);
    let src = sim.placement.node_of(0);
    let uplink = sim.topology().out_links[src.0 as usize][0];
    let plan = FaultPlan::from_events([FaultEvent::LinkDown {
        link: uplink,
        at: SimTime::ZERO,
        up_at: SimTime::from_micros(200),
    }])
    .unwrap();
    sim.apply_fault_plan(plan);
    sim.add_flows([FlowSpec {
        src_vm: 0,
        dst_vm: sim.placement.len() - 1,
        start: SimTime::ZERO,
        kind: FlowKind::Tcp { bytes: 20_000 },
    }]);
    sim.run();
    let s = sim.summary();
    assert_eq!(s.flows_completed, 1, "{s:?}");
    assert!(s.drops_unroutable > 0, "{s:?}");
    assert!(s.retransmissions > 0, "{s:?}");
}

/// The failures-experiment plan in miniature: a reboot, a link failure and a
/// loss window together. Same seed + same plan must give byte-identical
/// summaries.
#[test]
fn fault_runs_are_deterministic() {
    let run = || {
        let strategy = SwitchV2P::new(SwitchV2PConfig::default());
        let mut sim = sim_with(&strategy, 4096);
        let tor = sim
            .topology()
            .switches()
            .find(|n| sim.roles().role(n.id) == Some(SwitchRole::Tor))
            .map(|n| n.id)
            .unwrap();
        let uplink = sim.topology().out_links[tor.0 as usize][0];
        let plan = FaultPlan::from_events([
            FaultEvent::SwitchReboot {
                node: tor,
                at: SimTime::from_micros(100),
                blackout: SimDuration::from_micros(50),
            },
            FaultEvent::LinkDown {
                link: uplink,
                at: SimTime::from_micros(120),
                up_at: SimTime::from_micros(400),
            },
            FaultEvent::LossRate {
                link: None,
                rate: 0.002,
                from: SimTime::from_micros(50),
                until: SimTime::from_micros(600),
            },
        ])
        .unwrap();
        sim.apply_fault_plan(plan);
        let flows = tcp_flows(&sim, 20, 40_000);
        sim.add_flows(flows);
        sim.run();
        format!("{:?}", sim.summary())
    };
    assert_eq!(run(), run());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any bounded fault plan is deadlock-free: every fault window closes,
    /// so TCP's RTO eventually pushes all traffic through and the event
    /// queue drains (run() returns and the summary is reachable).
    #[test]
    fn arbitrary_fault_plans_never_wedge_the_run(
        events in proptest::collection::vec(
            (0u8..4, any::<u32>(), 0u64..400, 1u64..300, 0.0f64..0.25),
            0..6,
        )
    ) {
        let mut sim = sim_with(&NoCache, 0);
        let switches: Vec<NodeId> = sim.topology().switches().map(|n| n.id).collect();
        let gateways: Vec<NodeId> = sim.topology().gateways().map(|n| n.id).collect();
        let n_links = sim.topology().links.len();
        let mut plan = FaultPlan::new();
        for &(kind, idx, start_us, dur_us, rate) in &events {
            let at = SimTime::from_micros(start_us);
            let end = SimTime::from_micros(start_us + dur_us);
            let ev = match kind {
                0 => FaultEvent::SwitchReboot {
                    node: switches[idx as usize % switches.len()],
                    at,
                    blackout: SimDuration::from_micros(dur_us),
                },
                1 => FaultEvent::LinkDown {
                    link: LinkId((idx as usize % n_links) as u32),
                    at,
                    up_at: end,
                },
                2 => FaultEvent::GatewayOutage {
                    node: gateways[idx as usize % gateways.len()],
                    at,
                    up_at: end,
                },
                _ => FaultEvent::LossRate {
                    link: None,
                    rate,
                    from: at,
                    until: end,
                },
            };
            plan.push(ev).expect("generated events are well-formed");
        }
        sim.apply_fault_plan(plan);
        let flows = tcp_flows(&sim, 6, 10_000);
        let n = flows.len() as u64;
        sim.add_flows(flows);
        sim.run();
        let s = sim.summary();
        prop_assert_eq!(s.flows, n);
        prop_assert_eq!(s.flows_completed, n);
    }
}
