//! Concurrent control-plane state: `RwLock`-striped mapping shards.
//!
//! The servable flavor of the control plane. VIPs are hashed onto a fixed
//! set of stripes, each an independently locked [`MappingDb`]; reads take a
//! stripe read lock, writes a stripe write lock, and a global atomic epoch
//! orders accepted writes across stripes. Many TCP connections execute
//! batches against one [`StripedControlPlane`] concurrently.
//!
//! Consistency model (documented, tested): per-VIP operations are
//! linearizable (a VIP always lives on exactly one stripe); the global
//! epoch is monotonic over accepted writes; [`StripedControlPlane::snapshot`]
//! holds every stripe's read lock simultaneously, so it observes an
//! instant where no write is in flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use sv2p_packet::{Pip, Vip};
use sv2p_telemetry::profile::Histogram;
use sv2p_vnet::{MappingDb, MappingOp};

use crate::api::{CtlOp, CtlReply, ReplyBatch, RequestBatch, ServiceStats};
use crate::service::{counts_to_stats, sorted_entries, ControlPlaneService, OpCounts};

/// Default stripe count for servers (16 spreads writers well past the
/// connection counts a loopback bench drives).
pub const DEFAULT_STRIPES: usize = 16;

#[derive(Debug, Default)]
struct AtomicCounts {
    batches: AtomicU64,
    ops: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    installs: AtomicU64,
    invalidates: AtomicU64,
    migrates: AtomicU64,
    rejected: AtomicU64,
    snapshots: AtomicU64,
}

impl AtomicCounts {
    fn load(&self) -> OpCounts {
        OpCounts {
            batches: self.batches.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            installs: self.installs.load(Ordering::Relaxed),
            invalidates: self.invalidates.load(Ordering::Relaxed),
            migrates: self.migrates.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
        }
    }
}

/// `RwLock`-striped concurrent control-plane state.
#[derive(Debug)]
pub struct StripedControlPlane {
    stripes: Box<[RwLock<MappingDb>]>,
    /// Accepted writes so far; the authoritative epoch (per-stripe
    /// `MappingDb` epochs are ignored).
    epoch: AtomicU64,
    counts: AtomicCounts,
    /// Per-batch service time, nanoseconds (telemetry's log-linear
    /// histogram; locked only once per batch).
    exec_ns: Mutex<Histogram>,
}

impl StripedControlPlane {
    /// An empty control plane with `stripes` lock stripes (min 1).
    pub fn new(stripes: usize) -> Self {
        let n = stripes.max(1);
        StripedControlPlane {
            stripes: (0..n).map(|_| RwLock::new(MappingDb::new())).collect(),
            epoch: AtomicU64::new(0),
            counts: AtomicCounts::default(),
            exec_ns: Mutex::new(Histogram::new()),
        }
    }

    /// Number of lock stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, vip: Vip) -> usize {
        // Avalanche so dense VIP ranges spread across stripes.
        let mut h = (vip.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        (h % self.stripes.len() as u64) as usize
    }

    /// Seeds mappings without touching the op counters (each entry still
    /// advances the epoch, mirroring `LocalControlPlane::with_db` over a
    /// `seed_db()`).
    pub fn preload(&self, entries: impl IntoIterator<Item = (Vip, Pip)>) {
        for (vip, pip) in entries {
            let stripe = self.stripe_of(vip);
            let mut db = self.stripes[stripe].write().expect("stripe poisoned");
            db.apply(MappingOp::Install { vip, pip });
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// The current global epoch (accepted writes so far).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Live mappings, summed across stripes (each stripe locked briefly in
    /// turn; an instantaneous figure only when no writer is active).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.read().expect("stripe poisoned").len())
            .sum()
    }

    /// True when no stripe holds a mapping.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counted concurrent lookup.
    pub fn lookup(&self, vip: Vip) -> Option<Pip> {
        self.counts.lookups.fetch_add(1, Ordering::Relaxed);
        let stripe = self.stripe_of(vip);
        let hit = self.stripes[stripe]
            .read()
            .expect("stripe poisoned")
            .lookup(vip);
        if hit.is_some() {
            self.counts.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Applies one write; `Err` means rejected (state and epoch unchanged).
    pub fn apply(&self, op: MappingOp) -> Result<CtlReply, CtlReply> {
        let stripe = self.stripe_of(op.vip());
        let mut db = self.stripes[stripe].write().expect("stripe poisoned");
        match db.try_apply(op) {
            Ok(delta) => {
                self.epoch.fetch_add(1, Ordering::SeqCst);
                match op {
                    MappingOp::Install { .. } => {
                        self.counts.installs.fetch_add(1, Ordering::Relaxed)
                    }
                    MappingOp::Invalidate { .. } => {
                        self.counts.invalidates.fetch_add(1, Ordering::Relaxed)
                    }
                    MappingOp::Migrate { .. } => {
                        self.counts.migrates.fetch_add(1, Ordering::Relaxed)
                    }
                };
                Ok(CtlReply::Applied {
                    old: delta.old,
                    new: delta.new,
                })
            }
            Err(e) => {
                self.counts.rejected.fetch_add(1, Ordering::Relaxed);
                Err(CtlReply::Rejected { reason: e.into() })
            }
        }
    }

    /// Sorted full-table dump under a simultaneous all-stripe read lock.
    pub fn snapshot(&self) -> Vec<(Vip, Pip)> {
        self.counts.snapshots.fetch_add(1, Ordering::Relaxed);
        // Lock in index order (the only order anyone takes multiple
        // stripes) — no deadlock possible.
        let guards: Vec<_> = self
            .stripes
            .iter()
            .map(|s| s.read().expect("stripe poisoned"))
            .collect();
        let mut entries = Vec::new();
        for g in &guards {
            entries.extend(sorted_entries(g));
        }
        entries.sort_unstable_by_key(|&(v, _)| v.0);
        entries
    }

    /// Cumulative counters plus per-batch service-time percentiles.
    pub fn stats(&self) -> ServiceStats {
        let (p50, p99) = {
            let h = self.exec_ns.lock().expect("hist poisoned");
            if h.count() == 0 {
                (0, 0)
            } else {
                (h.percentile(50.0), h.percentile(99.0))
            }
        };
        counts_to_stats(
            &self.counts.load(),
            self.epoch(),
            self.len() as u64,
            p50,
            p99,
        )
    }

    /// Executes one batch (shared-reference flavor of
    /// [`ControlPlaneService::execute`], used directly by server threads).
    pub fn execute_shared(&self, req: &RequestBatch) -> ReplyBatch {
        let start = Instant::now();
        self.counts.batches.fetch_add(1, Ordering::Relaxed);
        self.counts.ops.fetch_add(req.ops.len() as u64, Ordering::Relaxed);
        let mut replies = Vec::with_capacity(req.ops.len());
        for op in &req.ops {
            let reply = match *op {
                CtlOp::Lookup { vip } => match self.lookup(vip) {
                    Some(pip) => CtlReply::Found { pip },
                    None => CtlReply::NotFound,
                },
                CtlOp::Snapshot => CtlReply::Snapshot {
                    entries: self.snapshot(),
                },
                CtlOp::Stats => CtlReply::Stats { stats: self.stats() },
                _ => {
                    let mop = op.as_mapping_op().expect("write op");
                    match self.apply(mop) {
                        Ok(r) | Err(r) => r,
                    }
                }
            };
            replies.push(reply);
        }
        let rep = ReplyBatch {
            id: req.id,
            epoch: self.epoch(),
            replies,
        };
        self.exec_ns
            .lock()
            .expect("hist poisoned")
            .record(start.elapsed().as_nanos() as u64);
        rep
    }
}

impl ControlPlaneService for Arc<StripedControlPlane> {
    fn execute(&mut self, req: &RequestBatch) -> ReplyBatch {
        self.execute_shared(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RejectReason;

    #[test]
    fn striped_basic_ops_and_epoch() {
        let cp = StripedControlPlane::new(4);
        assert_eq!(cp.stripes(), 4);
        cp.preload((0..100u32).map(|i| (Vip(i), Pip(1000 + i))));
        assert_eq!(cp.len(), 100);
        assert_eq!(cp.epoch(), 100);
        assert_eq!(cp.lookup(Vip(7)), Some(Pip(1007)));
        assert_eq!(cp.lookup(Vip(500)), None);
        let rep = cp
            .apply(MappingOp::Migrate { vip: Vip(7), to_pip: Pip(9), at_ns: None })
            .unwrap();
        assert_eq!(rep, CtlReply::Applied { old: Some(Pip(1007)), new: Some(Pip(9)) });
        assert_eq!(cp.epoch(), 101);
        // Rejected writes change nothing.
        let rej = cp
            .apply(MappingOp::Migrate { vip: Vip(999), to_pip: Pip(1), at_ns: None })
            .unwrap_err();
        assert_eq!(rej, CtlReply::Rejected { reason: RejectReason::UnknownVip });
        assert_eq!(cp.epoch(), 101);
        let s = cp.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.migrates, 1);
        assert_eq!(s.rejected, 1);
    }

    #[test]
    fn snapshot_is_globally_sorted() {
        let cp = StripedControlPlane::new(8);
        cp.preload([5u32, 1, 9, 3].into_iter().map(|v| (Vip(v), Pip(v + 100))));
        assert_eq!(
            cp.snapshot(),
            vec![
                (Vip(1), Pip(101)),
                (Vip(3), Pip(103)),
                (Vip(5), Pip(105)),
                (Vip(9), Pip(109)),
            ]
        );
    }

    #[test]
    fn concurrent_writers_account_every_write() {
        let cp = Arc::new(StripedControlPlane::new(8));
        cp.preload((0..64u32).map(|i| (Vip(i), Pip(i))));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cp = Arc::clone(&cp);
                std::thread::spawn(move || {
                    for i in 0..250u32 {
                        let vip = Vip((t * 16 + i % 16) % 64);
                        cp.apply(MappingOp::Migrate {
                            vip,
                            to_pip: Pip(10_000 + t * 1000 + i),
                            at_ns: Some(i as u64),
                        })
                        .unwrap();
                        cp.lookup(vip);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cp.epoch(), 64 + 4 * 250);
        let s = cp.stats();
        assert_eq!(s.migrates, 1000);
        assert_eq!(s.lookups, 1000);
        assert_eq!(s.hits, 1000);
        assert_eq!(s.mappings, 64);
    }
}
