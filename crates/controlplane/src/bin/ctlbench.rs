//! `sv2p-ctlbench` — closed-loop load generator for the V2P control plane.
//!
//! Drives batched lookups with a configurable invalidation fraction
//! against either an in-process loopback server (default) or an external
//! `sv2p-ctld` (`--addr`). Every invalidation is immediately followed, in
//! the same batch, by a reinstall of the same VIP, so the table holds a
//! steady `--mappings` entries for the whole run.
//!
//! ```text
//! sv2p-ctlbench [--addr HOST:PORT] [--mappings N] [--ops N] [--batch N]
//!               [--conns N] [--invalidate-pct P] [--stripes N] [--seed S]
//!               [--json PATH]
//! ```
//!
//! Prints a human summary and, with `--json PATH`, writes a
//! `sv2p-ctlbench/v1` report (the `BENCH_ctl.json` schema validated by
//! `scripts/check_perf.py --ctl`).

use std::sync::Arc;
use std::time::Instant;

use sv2p_simcore::SimRng;
use sv2p_telemetry::profile::Histogram;
use v2p_controlplane::{
    seed_pip, seed_vip, CtlClient, CtlOp, CtlReply, CtlServer, RequestBatch, ServiceStats,
    StripedControlPlane, DEFAULT_STRIPES,
};

struct Args {
    addr: Option<String>,
    mappings: u32,
    ops: u64,
    batch: usize,
    conns: usize,
    invalidate_pct: f64,
    stripes: usize,
    seed: u64,
    json: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("sv2p-ctlbench: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        mappings: 1_000_000,
        ops: 2_000_000,
        batch: 256,
        conns: 1,
        invalidate_pct: 5.0,
        stripes: DEFAULT_STRIPES,
        seed: 1,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| it.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match arg.as_str() {
            "--addr" => out.addr = Some(take("--addr")),
            "--mappings" => {
                out.mappings = take("--mappings")
                    .parse()
                    .unwrap_or_else(|_| die("--mappings needs an integer"))
            }
            "--ops" => {
                out.ops = take("--ops")
                    .parse()
                    .unwrap_or_else(|_| die("--ops needs an integer"))
            }
            "--batch" => {
                out.batch = take("--batch")
                    .parse()
                    .unwrap_or_else(|_| die("--batch needs an integer"))
            }
            "--conns" => {
                out.conns = take("--conns")
                    .parse()
                    .unwrap_or_else(|_| die("--conns needs an integer"))
            }
            "--invalidate-pct" => {
                out.invalidate_pct = take("--invalidate-pct")
                    .parse()
                    .unwrap_or_else(|_| die("--invalidate-pct needs a number"))
            }
            "--stripes" => {
                out.stripes = take("--stripes")
                    .parse()
                    .unwrap_or_else(|_| die("--stripes needs an integer"))
            }
            "--seed" => {
                out.seed = take("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"))
            }
            "--json" => out.json = Some(take("--json")),
            "--help" | "-h" => {
                println!(
                    "usage: sv2p-ctlbench [--addr HOST:PORT] [--mappings N] [--ops N] \
                     [--batch N] [--conns N] [--invalidate-pct P] [--stripes N] \
                     [--seed S] [--json PATH]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if out.batch == 0 {
        die("--batch must be at least 1");
    }
    if out.conns == 0 {
        die("--conns must be at least 1");
    }
    if !(0.0..=100.0).contains(&out.invalidate_pct) {
        die("--invalidate-pct must be in [0, 100]");
    }
    out
}

/// What one connection thread did.
#[derive(Default)]
struct ConnTally {
    ops: u64,
    lookups: u64,
    hits: u64,
    invalidates: u64,
    installs: u64,
    batches: u64,
    rtt_ns: Histogram,
}

fn run_conn(
    addr: std::net::SocketAddr,
    mut rng: SimRng,
    mappings: u32,
    target_ops: u64,
    batch: usize,
    invalidate_pct: f64,
) -> ConnTally {
    let mut client = CtlClient::connect(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let mut tally = ConnTally::default();
    let p_inv = invalidate_pct / 100.0;
    let mut req = RequestBatch::new(0);
    while tally.ops < target_ops {
        req.id += 1;
        req.ops.clear();
        while req.ops.len() < batch {
            let vip_idx = rng.gen_range(0..mappings);
            // Invalidations travel as invalidate+reinstall pairs so the
            // table's size holds steady across the run.
            if req.ops.len() + 1 < batch && rng.chance(p_inv) {
                req.ops.push(CtlOp::Invalidate { vip: seed_vip(vip_idx) });
                req.ops.push(CtlOp::Install {
                    vip: seed_vip(vip_idx),
                    pip: seed_pip(vip_idx),
                });
                tally.invalidates += 1;
                tally.installs += 1;
            } else {
                req.ops.push(CtlOp::Lookup { vip: seed_vip(vip_idx) });
                tally.lookups += 1;
            }
        }
        let start = Instant::now();
        let rep = client
            .call(&req)
            .unwrap_or_else(|e| die(&format!("call: {e}")));
        tally.rtt_ns.record(start.elapsed().as_nanos() as u64);
        tally.ops += req.ops.len() as u64;
        tally.batches += 1;
        for r in &rep.replies {
            if matches!(r, CtlReply::Found { .. }) {
                tally.hits += 1;
            }
        }
    }
    tally
}

/// Fetches the server's cumulative [`ServiceStats`].
fn fetch_stats(addr: std::net::SocketAddr) -> ServiceStats {
    let mut client = CtlClient::connect(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let mut req = RequestBatch::new(u64::MAX);
    req.ops.push(CtlOp::Stats);
    let rep = client
        .call(&req)
        .unwrap_or_else(|e| die(&format!("stats: {e}")));
    match rep.replies.first() {
        Some(CtlReply::Stats { stats }) => *stats,
        other => die(&format!("unexpected stats reply: {other:?}")),
    }
}

/// Installs the seed table over the wire (external servers started empty).
fn preload_remote(addr: std::net::SocketAddr, mappings: u32, batch: usize) -> u64 {
    let mut client = CtlClient::connect(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let mut installed = 0u64;
    let mut i = 0u32;
    while i < mappings {
        let mut req = RequestBatch::new(u64::from(i));
        while req.ops.len() < batch && i < mappings {
            req.ops.push(CtlOp::Install { vip: seed_vip(i), pip: seed_pip(i) });
            i += 1;
        }
        installed += req.ops.len() as u64;
        client
            .call(&req)
            .unwrap_or_else(|e| die(&format!("preload: {e}")));
    }
    installed
}

fn json_escape_free(s: &str) -> &str {
    // Paths with quotes/backslashes would need escaping; refuse rather
    // than emit broken JSON.
    if s.contains('"') || s.contains('\\') {
        die("--json path must not contain quotes or backslashes");
    }
    s
}

fn main() {
    let args = parse_args();

    // Default mode: spin up the server in-process on an ephemeral loopback
    // port and preload it directly (uncounted, like ctld's --mappings).
    let mut _local: Option<(Arc<StripedControlPlane>, CtlServer)> = None;
    let (addr, mode) = match &args.addr {
        Some(a) => {
            let addr = a
                .parse()
                .unwrap_or_else(|_| die("--addr must be HOST:PORT"));
            (addr, "external")
        }
        None => {
            let state = Arc::new(StripedControlPlane::new(args.stripes));
            state.preload((0..args.mappings).map(|i| (seed_vip(i), seed_pip(i))));
            let server = CtlServer::spawn("127.0.0.1:0", Arc::clone(&state))
                .unwrap_or_else(|e| die(&format!("bind loopback: {e}")));
            let addr = server.addr();
            _local = Some((state, server));
            (addr, "loopback")
        }
    };

    // External servers may have started empty; top the table up over the
    // wire before timing anything.
    let mut preload_installs = 0u64;
    if mode == "external" {
        let have = fetch_stats(addr).mappings;
        if have < u64::from(args.mappings) {
            preload_installs = preload_remote(addr, args.mappings, args.batch.max(256));
        }
    }

    let per_conn = args.ops.div_ceil(args.conns as u64);
    let master = SimRng::new(args.seed);
    let wall = Instant::now();
    let tallies: Vec<ConnTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.conns)
            .map(|c| {
                let rng = master.fork(c as u64 + 1);
                scope.spawn(move || {
                    run_conn(addr, rng, args.mappings, per_conn, args.batch, args.invalidate_pct)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("conn thread")).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let mut rtt = Histogram::new();
    let mut total = ConnTally::default();
    for t in &tallies {
        total.ops += t.ops;
        total.lookups += t.lookups;
        total.hits += t.hits;
        total.invalidates += t.invalidates;
        total.installs += t.installs;
        total.batches += t.batches;
        rtt.merge(&t.rtt_ns);
    }
    let stats = fetch_stats(addr);

    // Cross-validate client tallies against the server's own counters: a
    // codec or accounting bug shows up as a mismatch here.
    let client_installs = total.installs + preload_installs;
    if stats.lookups != total.lookups
        || stats.invalidates != total.invalidates
        || stats.installs != client_installs
    {
        die(&format!(
            "server counters disagree with client tallies: \
             server lookups={} invalidates={} installs={}, \
             client lookups={} invalidates={} installs={}",
            stats.lookups, stats.invalidates, stats.installs,
            total.lookups, total.invalidates, client_installs,
        ));
    }

    let ops_per_sec = total.ops as f64 / wall_s.max(1e-9);
    let lookups_per_sec = total.lookups as f64 / wall_s.max(1e-9);
    let hit_rate = if total.lookups > 0 {
        total.hits as f64 / total.lookups as f64
    } else {
        0.0
    };
    let (rtt_p50, rtt_p99) = if rtt.count() > 0 {
        (rtt.percentile(50.0), rtt.percentile(99.0))
    } else {
        (0, 0)
    };

    println!(
        "sv2p-ctlbench: {mode} server, {} mappings, {} conns x batch {}",
        args.mappings, args.conns, args.batch
    );
    println!(
        "  {} ops in {:.3}s  ({:.0} ops/s, {:.0} lookups/s, hit rate {:.4})",
        total.ops, wall_s, ops_per_sec, lookups_per_sec, hit_rate
    );
    println!(
        "  batch RTT p50 {} ns  p99 {} ns   server exec p50 {} ns  p99 {} ns",
        rtt_p50, rtt_p99, stats.exec_p50_ns, stats.exec_p99_ns
    );
    println!(
        "  server: epoch {}  mappings {}  rejected {}",
        stats.epoch, stats.mappings, stats.rejected
    );

    if let Some(path) = &args.json {
        let json = format!(
            concat!(
                "{{\n",
                "  \"schema\": \"sv2p-ctlbench/v1\",\n",
                "  \"mode\": \"{mode}\",\n",
                "  \"mappings\": {mappings},\n",
                "  \"conns\": {conns},\n",
                "  \"batch\": {batch},\n",
                "  \"invalidate_pct\": {inv_pct},\n",
                "  \"stripes\": {stripes},\n",
                "  \"seed\": {seed},\n",
                "  \"wall_s\": {wall_s:.6},\n",
                "  \"ops\": {ops},\n",
                "  \"lookups\": {lookups},\n",
                "  \"hits\": {hits},\n",
                "  \"invalidates\": {invalidates},\n",
                "  \"installs\": {installs},\n",
                "  \"batches\": {batches},\n",
                "  \"ops_per_sec\": {ops_per_sec:.1},\n",
                "  \"lookups_per_sec\": {lookups_per_sec:.1},\n",
                "  \"hit_rate\": {hit_rate:.6},\n",
                "  \"rtt_p50_ns\": {rtt_p50},\n",
                "  \"rtt_p99_ns\": {rtt_p99},\n",
                "  \"server\": {{\n",
                "    \"batches\": {s_batches},\n",
                "    \"ops\": {s_ops},\n",
                "    \"lookups\": {s_lookups},\n",
                "    \"hits\": {s_hits},\n",
                "    \"installs\": {s_installs},\n",
                "    \"invalidates\": {s_invalidates},\n",
                "    \"migrates\": {s_migrates},\n",
                "    \"rejected\": {s_rejected},\n",
                "    \"snapshots\": {s_snapshots},\n",
                "    \"epoch\": {s_epoch},\n",
                "    \"mappings\": {s_mappings},\n",
                "    \"exec_p50_ns\": {s_p50},\n",
                "    \"exec_p99_ns\": {s_p99}\n",
                "  }}\n",
                "}}\n"
            ),
            mode = mode,
            mappings = args.mappings,
            conns = args.conns,
            batch = args.batch,
            inv_pct = args.invalidate_pct,
            stripes = args.stripes,
            seed = args.seed,
            wall_s = wall_s,
            ops = total.ops,
            lookups = total.lookups,
            hits = total.hits,
            invalidates = total.invalidates,
            installs = client_installs,
            batches = total.batches,
            ops_per_sec = ops_per_sec,
            lookups_per_sec = lookups_per_sec,
            hit_rate = hit_rate,
            rtt_p50 = rtt_p50,
            rtt_p99 = rtt_p99,
            s_batches = stats.batches,
            s_ops = stats.ops,
            s_lookups = stats.lookups,
            s_hits = stats.hits,
            s_installs = stats.installs,
            s_invalidates = stats.invalidates,
            s_migrates = stats.migrates,
            s_rejected = stats.rejected,
            s_snapshots = stats.snapshots,
            s_epoch = stats.epoch,
            s_mappings = stats.mappings,
            s_p50 = stats.exec_p50_ns,
            s_p99 = stats.exec_p99_ns,
        );
        std::fs::write(json_escape_free(path), json)
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("  report -> {path}");
    }
}
