//! `sv2p-ctld` — the V2P control-plane daemon.
//!
//! Serves a [`StripedControlPlane`] over TCP, optionally preloaded with a
//! deterministic mapping table (the same `seed_vip`/`seed_pip` layout
//! `sv2p-ctlbench` queries).
//!
//! ```text
//! sv2p-ctld [--addr HOST:PORT] [--mappings N] [--stripes N]
//! ```

use std::sync::Arc;
use std::time::Duration;

use v2p_controlplane::{seed_pip, seed_vip, CtlServer, StripedControlPlane, DEFAULT_STRIPES};

struct Args {
    addr: String,
    mappings: u32,
    stripes: usize,
}

fn die(msg: &str) -> ! {
    eprintln!("sv2p-ctld: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: "127.0.0.1:5770".to_string(),
        mappings: 0,
        stripes: DEFAULT_STRIPES,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                out.addr = it.next().unwrap_or_else(|| die("--addr needs HOST:PORT"));
            }
            "--mappings" => {
                let v = it.next().unwrap_or_else(|| die("--mappings needs a value"));
                out.mappings = v
                    .parse()
                    .unwrap_or_else(|_| die("--mappings needs an integer"));
            }
            "--stripes" => {
                let v = it.next().unwrap_or_else(|| die("--stripes needs a value"));
                out.stripes = v
                    .parse()
                    .unwrap_or_else(|_| die("--stripes needs an integer"));
            }
            "--help" | "-h" => {
                println!("usage: sv2p-ctld [--addr HOST:PORT] [--mappings N] [--stripes N]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let state = Arc::new(StripedControlPlane::new(args.stripes));
    state.preload((0..args.mappings).map(|i| (seed_vip(i), seed_pip(i))));
    let server = CtlServer::spawn(args.addr.as_str(), Arc::clone(&state))
        .unwrap_or_else(|e| die(&format!("bind {}: {e}", args.addr)));
    // The exact "listening on" line is what scripts (and the CI smoke job)
    // wait for before starting clients.
    println!(
        "sv2p-ctld listening on {} (mappings={} stripes={})",
        server.addr(),
        args.mappings,
        state.stripes()
    );
    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
