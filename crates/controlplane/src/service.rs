//! The transport-agnostic control-plane service.
//!
//! [`ControlPlaneService`] is the one interface every front-end drives:
//! the simulator's in-process client, `sv2p-ctld`'s per-connection TCP
//! handlers, and the integration tests all submit [`RequestBatch`]es and
//! get [`ReplyBatch`]es. Two implementations exist:
//!
//! * [`LocalControlPlane`] — single-writer, zero-synchronization. This is
//!   what `sv2p-netsim`'s `Simulation` embeds: the simulator is just one
//!   more client of the same service a deployment would run.
//! * [`crate::StripedControlPlane`] — `RwLock`-striped concurrent state for
//!   the TCP server, where many connections execute batches in parallel.

use sv2p_packet::{Pip, Vip};
use sv2p_vnet::{MappingDb, MappingDelta, MappingOp};

use crate::api::{CtlOp, CtlReply, ReplyBatch, RequestBatch, ServiceStats};

/// Anything that can execute control-plane batches.
pub trait ControlPlaneService {
    /// Executes every op in order and returns one reply per op. The reply
    /// batch's `epoch` is the database epoch after the last op.
    fn execute(&mut self, req: &RequestBatch) -> ReplyBatch;
}

/// Plain (non-atomic) op counters, shared by both service flavors' logic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Batches executed.
    pub batches: u64,
    /// Ops executed.
    pub ops: u64,
    /// Lookups served.
    pub lookups: u64,
    /// Lookups that resolved.
    pub hits: u64,
    /// Installs applied.
    pub installs: u64,
    /// Invalidations applied.
    pub invalidates: u64,
    /// Migrations applied.
    pub migrates: u64,
    /// Writes rejected.
    pub rejected: u64,
    /// Snapshots served.
    pub snapshots: u64,
}

/// The single-threaded control plane: one [`MappingDb`] plus counters.
///
/// This is the in-process transport: calling [`Self::apply`] /
/// [`Self::execute`] is the library API the simulator consumes, and the
/// same logic the served path runs behind TCP.
#[derive(Debug, Clone, Default)]
pub struct LocalControlPlane {
    db: MappingDb,
    counts: OpCounts,
}

impl LocalControlPlane {
    /// An empty control plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an already-seeded database (e.g. a placement's `seed_db()`).
    /// Seeding does not count toward the op counters.
    pub fn with_db(db: MappingDb) -> Self {
        LocalControlPlane {
            db,
            counts: OpCounts::default(),
        }
    }

    /// The read view: gateways (and the simulator's agents) resolve against
    /// this directly — reads are not serialized through the batch API.
    pub fn db(&self) -> &MappingDb {
        &self.db
    }

    /// Applies one write through the audited [`MappingDb::apply`] path.
    ///
    /// Panics if the op is rejected (unknown-VIP migration): in-process
    /// callers treat that as a harness bug, exactly as `MappingDb::apply`
    /// does.
    pub fn apply(&mut self, op: MappingOp) -> MappingDelta {
        self.count_write(&op);
        self.db.apply(op)
    }

    /// Counted lookup (the served read path).
    pub fn lookup(&mut self, vip: Vip) -> Option<Pip> {
        self.counts.lookups += 1;
        let hit = self.db.lookup(vip);
        if hit.is_some() {
            self.counts.hits += 1;
        }
        hit
    }

    /// The current write epoch.
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// Cumulative counters (local flavor reports no exec-time percentiles).
    pub fn stats(&self) -> ServiceStats {
        counts_to_stats(&self.counts, self.db.epoch(), self.db.len() as u64, 0, 0)
    }

    /// Sorted full-table dump.
    pub fn snapshot(&mut self) -> Vec<(Vip, Pip)> {
        self.counts.snapshots += 1;
        sorted_entries(&self.db)
    }

    fn count_write(&mut self, op: &MappingOp) {
        match op {
            MappingOp::Install { .. } => self.counts.installs += 1,
            MappingOp::Invalidate { .. } => self.counts.invalidates += 1,
            MappingOp::Migrate { .. } => self.counts.migrates += 1,
        }
    }
}

impl ControlPlaneService for LocalControlPlane {
    fn execute(&mut self, req: &RequestBatch) -> ReplyBatch {
        self.counts.batches += 1;
        self.counts.ops += req.ops.len() as u64;
        let mut replies = Vec::with_capacity(req.ops.len());
        for op in &req.ops {
            let reply = match *op {
                CtlOp::Lookup { vip } => match self.lookup(vip) {
                    Some(pip) => CtlReply::Found { pip },
                    None => CtlReply::NotFound,
                },
                CtlOp::Snapshot => CtlReply::Snapshot {
                    entries: self.snapshot(),
                },
                CtlOp::Stats => CtlReply::Stats {
                    stats: self.stats(),
                },
                _ => {
                    let mop = op.as_mapping_op().expect("write op");
                    self.count_write(&mop);
                    match self.db.try_apply(mop) {
                        Ok(delta) => CtlReply::Applied {
                            old: delta.old,
                            new: delta.new,
                        },
                        Err(e) => {
                            self.counts.rejected += 1;
                            // The write did not land; undo its kind count so
                            // counters reflect applied writes only.
                            match mop {
                                MappingOp::Install { .. } => self.counts.installs -= 1,
                                MappingOp::Invalidate { .. } => {
                                    self.counts.invalidates -= 1
                                }
                                MappingOp::Migrate { .. } => self.counts.migrates -= 1,
                            }
                            CtlReply::Rejected { reason: e.into() }
                        }
                    }
                }
            };
            replies.push(reply);
        }
        ReplyBatch {
            id: req.id,
            epoch: self.db.epoch(),
            replies,
        }
    }
}

/// Builds a [`ServiceStats`] from counters plus the state dimensions.
pub(crate) fn counts_to_stats(
    c: &OpCounts,
    epoch: u64,
    mappings: u64,
    exec_p50_ns: u64,
    exec_p99_ns: u64,
) -> ServiceStats {
    ServiceStats {
        batches: c.batches,
        ops: c.ops,
        lookups: c.lookups,
        hits: c.hits,
        installs: c.installs,
        invalidates: c.invalidates,
        migrates: c.migrates,
        rejected: c.rejected,
        snapshots: c.snapshots,
        epoch,
        mappings,
        exec_p50_ns,
        exec_p99_ns,
    }
}

/// All `(vip, pip)` pairs, sorted by VIP — the canonical dump order.
pub(crate) fn sorted_entries(db: &MappingDb) -> Vec<(Vip, Pip)> {
    let mut entries: Vec<(Vip, Pip)> = db.iter().collect();
    entries.sort_unstable_by_key(|&(v, _)| v.0);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RejectReason;

    #[test]
    fn local_executes_batches_in_order() {
        let mut cp = LocalControlPlane::new();
        let req = RequestBatch {
            id: 9,
            ops: vec![
                CtlOp::Install { vip: Vip(1), pip: Pip(10) },
                CtlOp::Lookup { vip: Vip(1) },
                CtlOp::Migrate { vip: Vip(1), to_pip: Pip(20), at_ns: Some(5) },
                CtlOp::Lookup { vip: Vip(1) },
                CtlOp::Invalidate { vip: Vip(1) },
                CtlOp::Lookup { vip: Vip(1) },
                CtlOp::Migrate { vip: Vip(1), to_pip: Pip(30), at_ns: None },
            ],
        };
        let rep = cp.execute(&req);
        assert_eq!(rep.id, 9);
        assert_eq!(
            rep.replies,
            vec![
                CtlReply::Applied { old: None, new: Some(Pip(10)) },
                CtlReply::Found { pip: Pip(10) },
                CtlReply::Applied { old: Some(Pip(10)), new: Some(Pip(20)) },
                CtlReply::Found { pip: Pip(20) },
                CtlReply::Applied { old: Some(Pip(20)), new: None },
                CtlReply::NotFound,
                CtlReply::Rejected { reason: RejectReason::UnknownVip },
            ]
        );
        // install + migrate + invalidate landed; the rejected migrate did not.
        assert_eq!(rep.epoch, 3);
        let s = cp.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.installs, 1);
        assert_eq!(s.migrates, 1);
        assert_eq!(s.invalidates, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.mappings, 0);
    }

    #[test]
    fn with_db_seeding_is_uncounted() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install { vip: Vip(1), pip: Pip(2) });
        let cp = LocalControlPlane::with_db(db);
        assert_eq!(cp.stats().installs, 0);
        assert_eq!(cp.stats().mappings, 1);
        assert_eq!(cp.epoch(), 1);
    }

    #[test]
    fn snapshot_is_sorted() {
        let mut cp = LocalControlPlane::new();
        for v in [5u32, 1, 9, 3] {
            cp.apply(MappingOp::Install { vip: Vip(v), pip: Pip(v + 100) });
        }
        let snap = cp.snapshot();
        assert_eq!(
            snap,
            vec![
                (Vip(1), Pip(101)),
                (Vip(3), Pip(103)),
                (Vip(5), Pip(105)),
                (Vip(9), Pip(109)),
            ]
        );
    }
}
