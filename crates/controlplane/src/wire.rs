//! Hand-rolled deterministic wire codec for the control-plane protocol.
//!
//! Framing: every message is a little-endian `u32` payload length followed
//! by the payload. Payloads open with a fixed 4-byte header (magic,
//! version, message kind, pad) so a stray connection is rejected on its
//! first frame instead of being misparsed.
//!
//! The encoding is *canonical*: a given [`RequestBatch`]/[`ReplyBatch`]
//! always serializes to the same bytes, and decode(encode(x)) == x
//! (locked by `tests/proptest_wire.rs`). There is no serde involvement —
//! the workspace's vendored serde is a stub — and no self-describing
//! metadata: both ends speak exactly [`VERSION`].

use std::io::{self, Read, Write};

use sv2p_packet::{Pip, Vip};

use crate::api::{CtlOp, CtlReply, RejectReason, ReplyBatch, RequestBatch, ServiceStats};

/// First payload byte of every well-formed message.
pub const MAGIC: u8 = 0xC7;
/// Protocol version; bumped on any encoding change.
pub const VERSION: u8 = 1;
/// Payload kind byte: request.
pub const KIND_REQUEST: u8 = 0;
/// Payload kind byte: reply.
pub const KIND_REPLY: u8 = 1;

/// Default cap on accepted payload size (64 MiB) — a 1M-entry snapshot is
/// ~8 MB, so this bounds memory without constraining real use.
pub const MAX_FRAME: usize = 64 << 20;

const TAG_LOOKUP: u8 = 0;
const TAG_INSTALL: u8 = 1;
const TAG_INVALIDATE: u8 = 2;
const TAG_MIGRATE: u8 = 3;
const TAG_SNAPSHOT: u8 = 4;
const TAG_STATS: u8 = 5;

const RTAG_FOUND: u8 = 0;
const RTAG_NOT_FOUND: u8 = 1;
const RTAG_APPLIED: u8 = 2;
const RTAG_REJECTED: u8 = 3;
const RTAG_SNAPSHOT: u8 = 4;
const RTAG_STATS: u8 = 5;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload ended before a field completed.
    Truncated,
    /// Bad magic byte — not our protocol.
    BadMagic(u8),
    /// Version mismatch.
    BadVersion(u8),
    /// Unexpected message kind byte.
    BadKind(u8),
    /// Unknown op/reply tag.
    BadTag(u8),
    /// A flag byte held something other than 0/1, or a reject code was
    /// unknown.
    BadValue(u8),
    /// Payload had bytes left over after the declared contents.
    TrailingBytes(usize),
    /// Declared frame length exceeds the reader's cap.
    FrameTooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadMagic(b) => write!(f, "bad magic byte {b:#x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unexpected message kind {k}"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::BadValue(v) => write!(f, "invalid field value {v}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after payload"),
            WireError::FrameTooLarge(n) => write!(f, "declared frame of {n} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over a received payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(WireError::TrailingBytes(left));
        }
        Ok(())
    }
}

fn put_header(out: &mut Vec<u8>, kind: u8) {
    put_u8(out, MAGIC);
    put_u8(out, VERSION);
    put_u8(out, kind);
    put_u8(out, 0); // pad — keeps the id field 4-aligned in the payload
}

fn check_header(c: &mut Cursor<'_>, want_kind: u8) -> Result<(), WireError> {
    let magic = c.u8()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = c.u8()?;
    if kind != want_kind {
        return Err(WireError::BadKind(kind));
    }
    let _pad = c.u8()?;
    Ok(())
}

fn put_opt_pip(out: &mut Vec<u8>, p: Option<Pip>) {
    match p {
        Some(p) => {
            put_u8(out, 1);
            put_u32(out, p.0);
        }
        None => put_u8(out, 0),
    }
}

fn get_opt_pip(c: &mut Cursor<'_>) -> Result<Option<Pip>, WireError> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Pip(c.u32()?))),
        other => Err(WireError::BadValue(other)),
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Serializes a request batch into `out` (cleared first).
pub fn encode_request(req: &RequestBatch, out: &mut Vec<u8>) {
    out.clear();
    put_header(out, KIND_REQUEST);
    put_u64(out, req.id);
    put_u32(out, req.ops.len() as u32);
    for op in &req.ops {
        match *op {
            CtlOp::Lookup { vip } => {
                put_u8(out, TAG_LOOKUP);
                put_u32(out, vip.0);
            }
            CtlOp::Install { vip, pip } => {
                put_u8(out, TAG_INSTALL);
                put_u32(out, vip.0);
                put_u32(out, pip.0);
            }
            CtlOp::Invalidate { vip } => {
                put_u8(out, TAG_INVALIDATE);
                put_u32(out, vip.0);
            }
            CtlOp::Migrate { vip, to_pip, at_ns } => {
                put_u8(out, TAG_MIGRATE);
                put_u32(out, vip.0);
                put_u32(out, to_pip.0);
                match at_ns {
                    Some(ns) => {
                        put_u8(out, 1);
                        put_u64(out, ns);
                    }
                    None => put_u8(out, 0),
                }
            }
            CtlOp::Snapshot => put_u8(out, TAG_SNAPSHOT),
            CtlOp::Stats => put_u8(out, TAG_STATS),
        }
    }
}

/// Parses a request payload.
pub fn decode_request(buf: &[u8]) -> Result<RequestBatch, WireError> {
    let mut c = Cursor::new(buf);
    check_header(&mut c, KIND_REQUEST)?;
    let id = c.u64()?;
    let n = c.u32()? as usize;
    // Every op is at least 1 byte; a count beyond the remaining bytes is
    // corrupt, and refusing it caps the pre-allocation.
    if n > buf.len() {
        return Err(WireError::Truncated);
    }
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let op = match c.u8()? {
            TAG_LOOKUP => CtlOp::Lookup { vip: Vip(c.u32()?) },
            TAG_INSTALL => CtlOp::Install {
                vip: Vip(c.u32()?),
                pip: Pip(c.u32()?),
            },
            TAG_INVALIDATE => CtlOp::Invalidate { vip: Vip(c.u32()?) },
            TAG_MIGRATE => {
                let vip = Vip(c.u32()?);
                let to_pip = Pip(c.u32()?);
                let at_ns = match c.u8()? {
                    0 => None,
                    1 => Some(c.u64()?),
                    other => return Err(WireError::BadValue(other)),
                };
                CtlOp::Migrate { vip, to_pip, at_ns }
            }
            TAG_SNAPSHOT => CtlOp::Snapshot,
            TAG_STATS => CtlOp::Stats,
            other => return Err(WireError::BadTag(other)),
        };
        ops.push(op);
    }
    c.finish()?;
    Ok(RequestBatch { id, ops })
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

fn put_stats(out: &mut Vec<u8>, s: &ServiceStats) {
    for v in [
        s.batches,
        s.ops,
        s.lookups,
        s.hits,
        s.installs,
        s.invalidates,
        s.migrates,
        s.rejected,
        s.snapshots,
        s.epoch,
        s.mappings,
        s.exec_p50_ns,
        s.exec_p99_ns,
    ] {
        put_u64(out, v);
    }
}

fn get_stats(c: &mut Cursor<'_>) -> Result<ServiceStats, WireError> {
    Ok(ServiceStats {
        batches: c.u64()?,
        ops: c.u64()?,
        lookups: c.u64()?,
        hits: c.u64()?,
        installs: c.u64()?,
        invalidates: c.u64()?,
        migrates: c.u64()?,
        rejected: c.u64()?,
        snapshots: c.u64()?,
        epoch: c.u64()?,
        mappings: c.u64()?,
        exec_p50_ns: c.u64()?,
        exec_p99_ns: c.u64()?,
    })
}

/// Serializes a reply batch into `out` (cleared first).
pub fn encode_reply(rep: &ReplyBatch, out: &mut Vec<u8>) {
    out.clear();
    put_header(out, KIND_REPLY);
    put_u64(out, rep.id);
    put_u64(out, rep.epoch);
    put_u32(out, rep.replies.len() as u32);
    for r in &rep.replies {
        match r {
            CtlReply::Found { pip } => {
                put_u8(out, RTAG_FOUND);
                put_u32(out, pip.0);
            }
            CtlReply::NotFound => put_u8(out, RTAG_NOT_FOUND),
            CtlReply::Applied { old, new } => {
                put_u8(out, RTAG_APPLIED);
                put_opt_pip(out, *old);
                put_opt_pip(out, *new);
            }
            CtlReply::Rejected { reason } => {
                put_u8(out, RTAG_REJECTED);
                put_u8(out, reason.code());
            }
            CtlReply::Snapshot { entries } => {
                put_u8(out, RTAG_SNAPSHOT);
                put_u32(out, entries.len() as u32);
                for &(v, p) in entries {
                    put_u32(out, v.0);
                    put_u32(out, p.0);
                }
            }
            CtlReply::Stats { stats } => {
                put_u8(out, RTAG_STATS);
                put_stats(out, stats);
            }
        }
    }
}

/// Parses a reply payload.
pub fn decode_reply(buf: &[u8]) -> Result<ReplyBatch, WireError> {
    let mut c = Cursor::new(buf);
    check_header(&mut c, KIND_REPLY)?;
    let id = c.u64()?;
    let epoch = c.u64()?;
    let n = c.u32()? as usize;
    if n > buf.len() {
        return Err(WireError::Truncated);
    }
    let mut replies = Vec::with_capacity(n);
    for _ in 0..n {
        let r = match c.u8()? {
            RTAG_FOUND => CtlReply::Found { pip: Pip(c.u32()?) },
            RTAG_NOT_FOUND => CtlReply::NotFound,
            RTAG_APPLIED => CtlReply::Applied {
                old: get_opt_pip(&mut c)?,
                new: get_opt_pip(&mut c)?,
            },
            RTAG_REJECTED => {
                let code = c.u8()?;
                let reason =
                    RejectReason::from_code(code).ok_or(WireError::BadValue(code))?;
                CtlReply::Rejected { reason }
            }
            RTAG_SNAPSHOT => {
                let m = c.u32()? as usize;
                if m.saturating_mul(8) > buf.len() {
                    return Err(WireError::Truncated);
                }
                let mut entries = Vec::with_capacity(m);
                for _ in 0..m {
                    entries.push((Vip(c.u32()?), Pip(c.u32()?)));
                }
                CtlReply::Snapshot { entries }
            }
            RTAG_STATS => CtlReply::Stats {
                stats: get_stats(&mut c)?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        replies.push(r);
    }
    c.finish()?;
    Ok(ReplyBatch { id, epoch, replies })
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame into `buf` (resized to fit).
///
/// Returns `Ok(false)` on clean EOF at a frame boundary; frames larger than
/// `max` are refused without reading their body.
pub fn read_frame(
    r: &mut impl Read,
    buf: &mut Vec<u8>,
    max: usize,
) -> Result<bool, FrameError> {
    let mut len_bytes = [0u8; 4];
    // EOF before any length byte is a clean close; EOF inside is not.
    match r.read(&mut len_bytes) {
        Ok(0) => return Ok(false),
        Ok(n) => {
            if n < 4 {
                r.read_exact(&mut len_bytes[n..]).map_err(FrameError::Io)?;
            }
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max {
        return Err(FrameError::Wire(WireError::FrameTooLarge(len)));
    }
    buf.resize(len, 0);
    r.read_exact(buf).map_err(FrameError::Io)?;
    Ok(true)
}

/// A framing failure: transport error or protocol violation.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The peer violated the protocol.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestBatch {
        RequestBatch {
            id: 42,
            ops: vec![
                CtlOp::Lookup { vip: Vip(7) },
                CtlOp::Install { vip: Vip(8), pip: Pip(9) },
                CtlOp::Invalidate { vip: Vip(10) },
                CtlOp::Migrate { vip: Vip(11), to_pip: Pip(12), at_ns: Some(13) },
                CtlOp::Migrate { vip: Vip(14), to_pip: Pip(15), at_ns: None },
                CtlOp::Snapshot,
                CtlOp::Stats,
            ],
        }
    }

    #[test]
    fn request_round_trip() {
        let req = sample_request();
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(decode_request(&buf).unwrap(), req);
    }

    #[test]
    fn reply_round_trip() {
        let rep = ReplyBatch {
            id: 42,
            epoch: 1234,
            replies: vec![
                CtlReply::Found { pip: Pip(9) },
                CtlReply::NotFound,
                CtlReply::Applied { old: Some(Pip(1)), new: None },
                CtlReply::Applied { old: None, new: Some(Pip(2)) },
                CtlReply::Rejected { reason: RejectReason::UnknownVip },
                CtlReply::Snapshot {
                    entries: vec![(Vip(1), Pip(2)), (Vip(3), Pip(4))],
                },
                CtlReply::Stats {
                    stats: ServiceStats {
                        batches: 1,
                        ops: 7,
                        lookups: 2,
                        hits: 1,
                        installs: 1,
                        invalidates: 1,
                        migrates: 1,
                        rejected: 1,
                        snapshots: 1,
                        epoch: 1234,
                        mappings: 2,
                        exec_p50_ns: 100,
                        exec_p99_ns: 900,
                    },
                },
            ],
        };
        let mut buf = Vec::new();
        encode_reply(&rep, &mut buf);
        assert_eq!(decode_reply(&buf).unwrap(), rep);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        encode_request(&sample_request(), &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_request(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&sample_request(), &mut buf);
        buf.push(0);
        assert_eq!(decode_request(&buf), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn header_violations_are_typed() {
        let mut buf = Vec::new();
        encode_request(&sample_request(), &mut buf);
        let mut bad = buf.clone();
        bad[0] = 0x00;
        assert_eq!(decode_request(&bad), Err(WireError::BadMagic(0)));
        let mut bad = buf.clone();
        bad[1] = 99;
        assert_eq!(decode_request(&bad), Err(WireError::BadVersion(99)));
        let mut bad = buf.clone();
        bad[2] = KIND_REPLY;
        assert_eq!(decode_request(&bad), Err(WireError::BadKind(KIND_REPLY)));
    }

    #[test]
    fn framing_round_trip_and_clean_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello").unwrap();
        write_frame(&mut stream, b"").unwrap();
        let mut r = &stream[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf, MAX_FRAME).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, &mut buf, MAX_FRAME).unwrap());
        assert_eq!(buf, b"");
        assert!(!read_frame(&mut r, &mut buf, MAX_FRAME).unwrap());
    }

    #[test]
    fn oversized_frame_is_refused() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[0u8; 100]).unwrap();
        let mut r = &stream[..];
        let mut buf = Vec::new();
        match read_frame(&mut r, &mut buf, 10) {
            Err(FrameError::Wire(WireError::FrameTooLarge(100))) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
