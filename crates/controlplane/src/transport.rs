//! TCP transport: a frame-per-batch client and a thread-per-connection
//! server over the [`crate::wire`] codec.
//!
//! The server accepts on a nonblocking listener so it can poll a stop
//! flag; each accepted connection gets a blocking handler thread that
//! reads request frames, executes them against a shared
//! [`StripedControlPlane`], and writes reply frames back. The client is
//! strictly request/reply per connection (closed loop) — pipelining is
//! expressed by batching ops, not by overlapping frames.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::{ReplyBatch, RequestBatch};
use crate::state::StripedControlPlane;
use crate::wire::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, write_frame,
    FrameError, MAX_FRAME,
};

/// A blocking control-plane client over one TCP connection.
#[derive(Debug)]
pub struct CtlClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    scratch: Vec<u8>,
}

impl CtlClient {
    /// Connects to a `sv2p-ctld` endpoint (Nagle disabled: the workload is
    /// latency-bound request/reply frames).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(CtlClient {
            reader,
            writer,
            scratch: Vec::new(),
        })
    }

    /// Sends one batch and blocks for its reply.
    pub fn call(&mut self, req: &RequestBatch) -> Result<ReplyBatch, FrameError> {
        encode_request(req, &mut self.scratch);
        write_frame(&mut self.writer, &self.scratch)?;
        self.writer.flush()?;
        if !read_frame(&mut self.reader, &mut self.scratch, MAX_FRAME)? {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )));
        }
        let rep = decode_reply(&self.scratch)?;
        if rep.id != req.id {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "reply id does not match request id",
            )));
        }
        Ok(rep)
    }
}

/// A running `sv2p-ctld` server: accept loop plus connection handlers.
#[derive(Debug)]
pub struct CtlServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CtlServer {
    /// Binds `addr` and starts serving `state` until [`Self::shutdown`].
    ///
    /// Pass port 0 to bind an ephemeral port; the bound address is
    /// available from [`Self::addr`].
    pub fn spawn(
        addr: impl ToSocketAddrs,
        state: Arc<StripedControlPlane>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, state, stop_accept);
        });
        Ok(CtlServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// handed to handler threads finish when their client disconnects.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CtlServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<StripedControlPlane>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    // A poisoned connection only loses that client.
                    let _ = serve_connection(stream, &state);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake); the
                // listener itself is still good.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Serves one connection to completion: frames in, batches executed,
/// frames out. Returns when the client closes or on the first error.
pub fn serve_connection(
    stream: TcpStream,
    state: &StripedControlPlane,
) -> Result<(), FrameError> {
    stream.set_nodelay(true)?;
    // Handler threads block in read; blocking mode is inherited per-stream,
    // not from the nonblocking listener on all platforms, so set it
    // explicitly.
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(FrameError::Io)?);
    let mut writer = BufWriter::new(stream);
    let mut in_buf = Vec::new();
    let mut out_buf = Vec::new();
    while read_frame(&mut reader, &mut in_buf, MAX_FRAME)? {
        let req = decode_request(&in_buf)?;
        let rep = state.execute_shared(&req);
        encode_reply(&rep, &mut out_buf);
        write_frame(&mut writer, &out_buf)?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{CtlOp, CtlReply};
    use sv2p_packet::{Pip, Vip};

    #[test]
    fn client_server_round_trip_on_loopback() {
        let state = Arc::new(StripedControlPlane::new(4));
        state.preload((0..32u32).map(|i| (Vip(i), Pip(100 + i))));
        let mut server =
            CtlServer::spawn("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let mut client = CtlClient::connect(server.addr()).expect("connect");

        let mut req = RequestBatch::new(7);
        req.ops.push(CtlOp::Lookup { vip: Vip(3) });
        req.ops.push(CtlOp::Migrate { vip: Vip(3), to_pip: Pip(900), at_ns: Some(11) });
        req.ops.push(CtlOp::Lookup { vip: Vip(3) });
        req.ops.push(CtlOp::Lookup { vip: Vip(77) });
        let rep = client.call(&req).expect("call");
        assert_eq!(rep.id, 7);
        assert_eq!(rep.epoch, 33);
        assert_eq!(
            rep.replies,
            vec![
                CtlReply::Found { pip: Pip(103) },
                CtlReply::Applied { old: Some(Pip(103)), new: Some(Pip(900)) },
                CtlReply::Found { pip: Pip(900) },
                CtlReply::NotFound,
            ]
        );

        // A second client sees the first client's write.
        let mut client2 = CtlClient::connect(server.addr()).expect("connect2");
        let mut req2 = RequestBatch::new(8);
        req2.ops.push(CtlOp::Lookup { vip: Vip(3) });
        let rep2 = client2.call(&req2).expect("call2");
        assert_eq!(rep2.replies, vec![CtlReply::Found { pip: Pip(900) }]);

        server.shutdown();
    }

    #[test]
    fn server_shutdown_is_idempotent_and_drops_clean() {
        let state = Arc::new(StripedControlPlane::new(1));
        let mut server = CtlServer::spawn("127.0.0.1:0", state).expect("bind");
        server.shutdown();
        server.shutdown();
        // Drop after explicit shutdown must not hang or panic.
    }
}
