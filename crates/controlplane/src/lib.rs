//! Servable V2P control plane.
//!
//! SwitchV2P's premise is that the *data plane* caches V2P mappings in
//! network switches — but every cache needs an authority to fill and
//! invalidate it. This crate extracts that authority out of the simulator
//! into a standalone, transport-agnostic library:
//!
//! * [`api`] — the batched, epoch-versioned request/reply vocabulary
//!   ([`CtlOp`]: `Lookup` / `Install` / `Invalidate` / `Migrate` /
//!   `Snapshot` / `Stats`).
//! * [`service`] — [`ControlPlaneService`] and the single-threaded
//!   [`LocalControlPlane`] the simulator embeds (the in-process transport).
//! * [`state`] — [`StripedControlPlane`], `RwLock`-striped concurrent state
//!   for serving many connections.
//! * [`wire`] — a hand-rolled, deterministic, length-prefixed wire codec
//!   (no serde; canonical little-endian encoding, property-tested).
//! * [`transport`] — a `std::net` TCP server ([`CtlServer`]) and blocking
//!   client ([`CtlClient`]).
//!
//! Two binaries front the library: `sv2p-ctld` (the daemon) and
//! `sv2p-ctlbench` (a closed-loop load generator that emits
//! `BENCH_ctl.json`).
//!
//! The design invariant: the simulator path and the served path execute
//! the **same** service logic over the **same** [`sv2p_vnet::MappingDb`]
//! semantics, so an op log replayed through either produces identical end
//! states and epochs (asserted by `tests/served_equiv.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod service;
pub mod state;
pub mod transport;
pub mod wire;

pub use api::{CtlOp, CtlReply, RejectReason, ReplyBatch, RequestBatch, ServiceStats};
pub use service::{ControlPlaneService, LocalControlPlane, OpCounts};
pub use state::{StripedControlPlane, DEFAULT_STRIPES};
pub use transport::{CtlClient, CtlServer};

use sv2p_packet::{Pip, Vip};

/// The deterministic VIP for seeded-table slot `i` (shared by `sv2p-ctld`
/// and `sv2p-ctlbench` so a preloaded server answers the bench's keys).
pub fn seed_vip(i: u32) -> Vip {
    Vip(i)
}

/// The deterministic PIP initially mapped to seeded-table slot `i`.
pub fn seed_pip(i: u32) -> Pip {
    Pip(0x0A00_0000 | (i & 0x00FF_FFFF))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_layout_is_deterministic() {
        assert_eq!(seed_vip(5), Vip(5));
        assert_eq!(seed_pip(0), Pip(0x0A00_0000));
        assert_eq!(seed_pip(7), Pip(0x0A00_0007));
    }
}
