//! The control-plane request/response vocabulary.
//!
//! Every interaction with the V2P control plane — from the simulator's
//! in-process client, from `sv2p-ctld`'s TCP front-end, from tests — is a
//! [`RequestBatch`] of [`CtlOp`]s answered by a [`ReplyBatch`] of
//! [`CtlReply`]s, one reply per op in order. Responses are *epoch-versioned*:
//! the batch carries the database epoch observed after the last op executed,
//! so clients can order what they saw against other writers.

use sv2p_packet::{Pip, Vip};
use sv2p_vnet::{ApplyError, MappingOp};

/// One control-plane operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlOp {
    /// Resolve a VIP (gateway read path).
    Lookup {
        /// The virtual address to resolve.
        vip: Vip,
    },
    /// Install or overwrite a mapping.
    Install {
        /// The virtual address being placed.
        vip: Vip,
        /// Its physical location.
        pip: Pip,
    },
    /// Withdraw a mapping.
    Invalidate {
        /// The virtual address being withdrawn.
        vip: Vip,
    },
    /// Move an existing mapping, optionally stamping the migration instant
    /// (virtual ns) for staleness accounting.
    Migrate {
        /// The migrating virtual address.
        vip: Vip,
        /// Destination physical address.
        to_pip: Pip,
        /// Migration instant, if tracked.
        at_ns: Option<u64>,
    },
    /// Dump the full table (sorted by VIP — deterministic).
    Snapshot,
    /// Fetch the service's cumulative counters.
    Stats,
}

impl CtlOp {
    /// The mutation this op performs, if it is a write.
    pub fn as_mapping_op(&self) -> Option<MappingOp> {
        match *self {
            CtlOp::Install { vip, pip } => Some(MappingOp::Install { vip, pip }),
            CtlOp::Invalidate { vip } => Some(MappingOp::Invalidate { vip }),
            CtlOp::Migrate { vip, to_pip, at_ns } => {
                Some(MappingOp::Migrate { vip, to_pip, at_ns })
            }
            CtlOp::Lookup { .. } | CtlOp::Snapshot | CtlOp::Stats => None,
        }
    }
}

impl From<MappingOp> for CtlOp {
    fn from(op: MappingOp) -> Self {
        match op {
            MappingOp::Install { vip, pip } => CtlOp::Install { vip, pip },
            MappingOp::Invalidate { vip } => CtlOp::Invalidate { vip },
            MappingOp::Migrate { vip, to_pip, at_ns } => {
                CtlOp::Migrate { vip, to_pip, at_ns }
            }
        }
    }
}

/// A batch of operations executed in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestBatch {
    /// Client-chosen correlation id, echoed verbatim in the reply.
    pub id: u64,
    /// The operations, executed front to back.
    pub ops: Vec<CtlOp>,
}

impl RequestBatch {
    /// A batch with the given correlation id and no ops yet.
    pub fn new(id: u64) -> Self {
        RequestBatch { id, ops: Vec::new() }
    }
}

/// Why a write was rejected. Wire-stable: each variant has a fixed code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A `Migrate` named a VIP that was never placed.
    UnknownVip,
}

impl RejectReason {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            RejectReason::UnknownVip => 0,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(RejectReason::UnknownVip),
            _ => None,
        }
    }
}

impl From<ApplyError> for RejectReason {
    fn from(e: ApplyError) -> Self {
        match e {
            ApplyError::UnknownVip(_) => RejectReason::UnknownVip,
        }
    }
}

/// Cumulative service counters, as returned by [`CtlOp::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Request batches executed.
    pub batches: u64,
    /// Total ops executed (all kinds).
    pub ops: u64,
    /// Lookup ops served.
    pub lookups: u64,
    /// Lookups that resolved.
    pub hits: u64,
    /// Installs applied.
    pub installs: u64,
    /// Invalidations applied.
    pub invalidates: u64,
    /// Migrations applied.
    pub migrates: u64,
    /// Writes rejected.
    pub rejected: u64,
    /// Snapshot ops served.
    pub snapshots: u64,
    /// Database epoch at the time of the stats read.
    pub epoch: u64,
    /// Live mappings at the time of the stats read.
    pub mappings: u64,
    /// p50 of per-batch service time, nanoseconds (0 when untimed).
    pub exec_p50_ns: u64,
    /// p99 of per-batch service time, nanoseconds (0 when untimed).
    pub exec_p99_ns: u64,
}

/// One reply, positionally matched to the request op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlReply {
    /// Lookup resolved.
    Found {
        /// The current physical location.
        pip: Pip,
    },
    /// Lookup found no mapping.
    NotFound,
    /// A write was applied; `old`/`new` mirror [`sv2p_vnet::MappingDelta`].
    Applied {
        /// The mapping before the write.
        old: Option<Pip>,
        /// The mapping after the write.
        new: Option<Pip>,
    },
    /// A write was rejected; the database is unchanged.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Full table dump, sorted by VIP.
    Snapshot {
        /// All `(vip, pip)` mappings.
        entries: Vec<(Vip, Pip)>,
    },
    /// Cumulative counters.
    Stats {
        /// The counter values.
        stats: ServiceStats,
    },
}

/// A batch of replies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplyBatch {
    /// The request's correlation id, echoed.
    pub id: u64,
    /// Database epoch observed after the batch's last op.
    pub epoch: u64,
    /// One reply per request op, in order.
    pub replies: Vec<CtlReply>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctlop_mapping_op_round_trip() {
        let ops = [
            MappingOp::Install { vip: Vip(1), pip: Pip(2) },
            MappingOp::Invalidate { vip: Vip(3) },
            MappingOp::Migrate { vip: Vip(4), to_pip: Pip(5), at_ns: Some(6) },
        ];
        for op in ops {
            assert_eq!(CtlOp::from(op).as_mapping_op(), Some(op));
        }
        assert_eq!(CtlOp::Lookup { vip: Vip(1) }.as_mapping_op(), None);
        assert_eq!(CtlOp::Snapshot.as_mapping_op(), None);
        assert_eq!(CtlOp::Stats.as_mapping_op(), None);
    }

    #[test]
    fn reject_codes_are_stable() {
        assert_eq!(RejectReason::UnknownVip.code(), 0);
        assert_eq!(RejectReason::from_code(0), Some(RejectReason::UnknownVip));
        assert_eq!(RejectReason::from_code(200), None);
    }
}
