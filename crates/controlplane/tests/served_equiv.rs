//! The design invariant of the control-plane extraction: an op log
//! replayed through the simulator's in-process transport
//! ([`LocalControlPlane`]) and through the TCP-served concurrent
//! transport ([`StripedControlPlane`] behind [`CtlServer`]) produces
//! identical `MappingDb` end states — same sorted entries, same epoch,
//! same per-op replies.

use std::sync::Arc;

use sv2p_packet::{Pip, Vip};
use sv2p_simcore::SimRng;
use v2p_controlplane::{
    ControlPlaneService, CtlClient, CtlOp, CtlServer, LocalControlPlane, RequestBatch,
    StripedControlPlane,
};

/// A deterministic mixed op log: installs, lookups, migrations (with and
/// without timestamps), invalidations — including migrations of
/// never-placed VIPs that must be rejected identically by both paths.
fn synth_ops(seed: u64, n: usize) -> Vec<CtlOp> {
    let mut rng = SimRng::new(seed);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let vip = Vip(rng.gen_range(0u32..200));
        ops.push(match rng.gen_range(0u32..10) {
            0..=2 => CtlOp::Install { vip, pip: Pip(rng.gen_range(0u32..1000)) },
            3..=5 => CtlOp::Lookup { vip },
            6 => CtlOp::Invalidate { vip },
            7 => CtlOp::Migrate {
                vip,
                to_pip: Pip(rng.gen_range(0u32..1000)),
                at_ns: None,
            },
            _ => CtlOp::Migrate {
                vip,
                to_pip: Pip(rng.gen_range(0u32..1000)),
                at_ns: Some(rng.gen_range(0u64..1_000_000)),
            },
        });
    }
    ops
}

fn batches(ops: &[CtlOp], batch: usize) -> Vec<RequestBatch> {
    ops.chunks(batch)
        .enumerate()
        .map(|(i, chunk)| RequestBatch {
            id: i as u64,
            ops: chunk.to_vec(),
        })
        .collect()
}

#[test]
fn simulator_path_and_served_path_agree() {
    let ops = synth_ops(42, 3000);
    let reqs = batches(&ops, 64);

    // Path 1: the in-process transport the simulator embeds.
    let mut local = LocalControlPlane::new();
    let local_reps: Vec<_> = reqs.iter().map(|r| local.execute(r)).collect();

    // Path 2: the same log over TCP against the striped concurrent state.
    let state = Arc::new(StripedControlPlane::new(8));
    let mut server = CtlServer::spawn("127.0.0.1:0", Arc::clone(&state)).expect("bind");
    let mut client = CtlClient::connect(server.addr()).expect("connect");
    let served_reps: Vec<_> = reqs
        .iter()
        .map(|r| client.call(r).expect("call"))
        .collect();

    // Per-op replies and per-batch epochs are identical, not just the end
    // state: both transports run the same service semantics.
    assert_eq!(local_reps, served_reps);

    // End states match entry-for-entry and epoch-for-epoch.
    let mut local_snap_src = local.clone();
    assert_eq!(local_snap_src.snapshot(), state.snapshot());
    assert_eq!(local.epoch(), state.epoch());
    assert!(local.epoch() > 0, "log must contain accepted writes");

    server.shutdown();
}

#[test]
fn served_path_agrees_for_multiple_seeds_and_batch_sizes() {
    for (seed, batch) in [(1u64, 1usize), (7, 17), (1234, 500)] {
        let ops = synth_ops(seed, 800);
        let reqs = batches(&ops, batch);

        let mut local = LocalControlPlane::new();
        for r in &reqs {
            local.execute(r);
        }

        let state = Arc::new(StripedControlPlane::new(4));
        let mut server =
            CtlServer::spawn("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let mut client = CtlClient::connect(server.addr()).expect("connect");
        for r in &reqs {
            client.call(r).expect("call");
        }

        let mut local_for_snap = local.clone();
        assert_eq!(
            local_for_snap.snapshot(),
            state.snapshot(),
            "end states diverged for seed {seed} batch {batch}"
        );
        assert_eq!(local.epoch(), state.epoch());
        server.shutdown();
    }
}

#[test]
fn stats_counters_match_between_transports() {
    let ops = synth_ops(99, 1000);
    let reqs = batches(&ops, 50);

    let mut local = LocalControlPlane::new();
    for r in &reqs {
        local.execute(r);
    }

    let state = Arc::new(StripedControlPlane::new(8));
    let mut server = CtlServer::spawn("127.0.0.1:0", Arc::clone(&state)).expect("bind");
    let mut client = CtlClient::connect(server.addr()).expect("connect");
    for r in &reqs {
        client.call(r).expect("call");
    }

    let l = local.stats();
    let s = state.stats();
    assert_eq!(l.batches, s.batches);
    assert_eq!(l.ops, s.ops);
    assert_eq!(l.lookups, s.lookups);
    assert_eq!(l.hits, s.hits);
    assert_eq!(l.installs, s.installs);
    assert_eq!(l.invalidates, s.invalidates);
    assert_eq!(l.migrates, s.migrates);
    assert_eq!(l.rejected, s.rejected);
    assert_eq!(l.epoch, s.epoch);
    assert_eq!(l.mappings, s.mappings);
    assert!(l.rejected > 0, "log must exercise the rejection path");
    server.shutdown();
}
