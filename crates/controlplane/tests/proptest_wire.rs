//! Property tests for the hand-rolled wire codec: arbitrary batches must
//! round-trip exactly, and encoding must be canonical (re-encoding a
//! decoded batch reproduces the original bytes).

use proptest::prelude::*;
use sv2p_packet::{Pip, Vip};
use v2p_controlplane::api::{
    CtlOp, CtlReply, RejectReason, ReplyBatch, RequestBatch, ServiceStats,
};
use v2p_controlplane::wire::{
    decode_reply, decode_request, encode_reply, encode_request, WireError,
};

fn arb_op() -> impl Strategy<Value = CtlOp> {
    prop_oneof![
        any::<u32>().prop_map(|v| CtlOp::Lookup { vip: Vip(v) }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(v, p)| CtlOp::Install { vip: Vip(v), pip: Pip(p) }),
        any::<u32>().prop_map(|v| CtlOp::Invalidate { vip: Vip(v) }),
        (any::<u32>(), any::<u32>(), proptest::option::of(any::<u64>()))
            .prop_map(|(v, p, at)| CtlOp::Migrate {
                vip: Vip(v),
                to_pip: Pip(p),
                at_ns: at
            }),
        Just(CtlOp::Snapshot),
        Just(CtlOp::Stats),
    ]
}

fn arb_stats() -> impl Strategy<Value = ServiceStats> {
    // 13 fields; tuple strategies cap at 10, so split.
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|((a, b, c, d, e), (f, g, h, i, j), (k, l, m))| ServiceStats {
            batches: a,
            ops: b,
            lookups: c,
            hits: d,
            installs: e,
            invalidates: f,
            migrates: g,
            rejected: h,
            snapshots: i,
            epoch: j,
            mappings: k,
            exec_p50_ns: l,
            exec_p99_ns: m,
        })
}

fn arb_reply() -> impl Strategy<Value = CtlReply> {
    prop_oneof![
        any::<u32>().prop_map(|p| CtlReply::Found { pip: Pip(p) }),
        Just(CtlReply::NotFound),
        (proptest::option::of(any::<u32>()), proptest::option::of(any::<u32>()))
            .prop_map(|(old, new)| CtlReply::Applied {
                old: old.map(Pip),
                new: new.map(Pip),
            }),
        Just(CtlReply::Rejected { reason: RejectReason::UnknownVip }),
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..20).prop_map(|es| {
            CtlReply::Snapshot {
                entries: es.into_iter().map(|(v, p)| (Vip(v), Pip(p))).collect(),
            }
        }),
        arb_stats().prop_map(|stats| CtlReply::Stats { stats }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_round_trips_and_is_canonical(
        id in any::<u64>(),
        ops in proptest::collection::vec(arb_op(), 0..40),
    ) {
        let req = RequestBatch { id, ops };
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        let back = decode_request(&bytes).expect("decode");
        prop_assert_eq!(&back, &req);
        // Canonical: re-encoding the decoded value is byte-identical.
        let mut again = Vec::new();
        encode_request(&back, &mut again);
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn reply_round_trips_and_is_canonical(
        id in any::<u64>(),
        epoch in any::<u64>(),
        replies in proptest::collection::vec(arb_reply(), 0..30),
    ) {
        let rep = ReplyBatch { id, epoch, replies };
        let mut bytes = Vec::new();
        encode_reply(&rep, &mut bytes);
        let back = decode_reply(&bytes).expect("decode");
        prop_assert_eq!(&back, &rep);
        let mut again = Vec::new();
        encode_reply(&back, &mut again);
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn every_truncation_is_rejected(
        ops in proptest::collection::vec(arb_op(), 1..10),
    ) {
        let req = RequestBatch { id: 7, ops };
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_request(&bytes[..cut]).is_err(),
                "decoded a {cut}-byte prefix of a {}-byte payload",
                bytes.len()
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(
        replies in proptest::collection::vec(arb_reply(), 0..6),
        extra in 1usize..4,
    ) {
        let rep = ReplyBatch { id: 1, epoch: 2, replies };
        let mut bytes = Vec::new();
        encode_reply(&rep, &mut bytes);
        bytes.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert_eq!(
            decode_reply(&bytes),
            Err(WireError::TrailingBytes(extra))
        );
    }
}
